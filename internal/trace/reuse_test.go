package trace

import (
	"math/rand"
	"testing"

	"pccsim/internal/mem"
)

func observeAll(r *ReuseAnalyzer, addrs []mem.VirtAddr) {
	for _, a := range addrs {
		r.Observe(a)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		d4, d2 float64
		want   PageClass
	}{
		{10, 5, TLBFriendly},
		{float64(ClassifyThreshold) - 1, 9999, TLBFriendly},
		{float64(ClassifyThreshold), 10, HUB},
		{5000, 100, HUB},
		{5000, 5000, LowReuse},
		{float64(ClassifyThreshold), float64(ClassifyThreshold), LowReuse},
	}
	for _, c := range cases {
		if got := Classify(c.d4, c.d2); got != c.want {
			t.Errorf("Classify(%v,%v) = %v, want %v", c.d4, c.d2, got, c.want)
		}
	}
}

func TestPageClassString(t *testing.T) {
	for _, c := range []PageClass{TLBFriendly, HUB, LowReuse, PageClass(7)} {
		if c.String() == "" {
			t.Errorf("class %d must stringify", int(c))
		}
	}
}

func TestReuseSequentialIsTLBFriendly(t *testing.T) {
	r := NewReuseAnalyzer()
	// Repeatedly sweep 4 pages: tiny reuse distance at both sizes.
	var seq []mem.VirtAddr
	for rep := 0; rep < 50; rep++ {
		for p := 0; p < 4; p++ {
			seq = append(seq, mem.VirtAddr(p*0x1000))
		}
	}
	observeAll(r, seq)
	for _, pr := range r.Results() {
		if pr.Class != TLBFriendly {
			t.Errorf("page %d class = %v, want TLB-friendly (d4=%.0f d2=%.0f)",
				pr.Page, pr.Class, pr.Dist4K, pr.Dist2M)
		}
	}
}

func TestReuseHUBDetection(t *testing.T) {
	// Accesses sparse across >threshold 4KB pages within ONE 2MB region:
	// high 4KB reuse distance, near-zero 2MB reuse distance.
	r := NewReuseAnalyzer()
	rng := rand.New(rand.NewSource(1))
	region := mem.VirtAddr(0) // one 2MB region has 512 pages; use 2 regions
	var seq []mem.VirtAddr
	// Use 2048 pages spread over 4 regions, visited in random order,
	// several times: 4KB distance ~2047 >= threshold, 2MB distance ~3.
	pages := make([]mem.VirtAddr, 2048)
	for i := range pages {
		pages[i] = region + mem.VirtAddr(i*0x1000)
	}
	for rep := 0; rep < 6; rep++ {
		perm := rng.Perm(len(pages))
		for _, i := range perm {
			seq = append(seq, pages[i])
		}
	}
	observeAll(r, seq)
	sum := Summarize(r.Results())
	if sum.Pages[HUB] < uint64(len(pages))*8/10 {
		t.Errorf("HUB pages = %d of %d, want most (summary %+v)",
			sum.Pages[HUB], len(pages), sum)
	}
}

func TestReuseLowReuseDetection(t *testing.T) {
	// Pages spread across thousands of 2MB regions, each touched twice
	// with huge gaps: high distance at both granularities.
	r := NewReuseAnalyzer()
	var seq []mem.VirtAddr
	n := 3000
	for rep := 0; rep < 2; rep++ {
		for i := 0; i < n; i++ {
			seq = append(seq, mem.VirtAddr(i)<<21) // one page per region
		}
	}
	observeAll(r, seq)
	sum := Summarize(r.Results())
	if sum.Pages[LowReuse] < uint64(n)*9/10 {
		t.Errorf("low-reuse pages = %d of %d", sum.Pages[LowReuse], n)
	}
}

func TestReuseSingleTouchPages(t *testing.T) {
	// Pages touched once have no 4KB reuse sample: they must classify by
	// the maximal-distance convention, not crash.
	r := NewReuseAnalyzer()
	observeAll(r, []mem.VirtAddr{0x0, 0x1000, 0x2000})
	res := r.Results()
	if len(res) != 3 {
		t.Fatalf("pages = %d", len(res))
	}
	for _, pr := range res {
		if pr.Accesses != 1 {
			t.Errorf("page %d accesses = %d", pr.Page, pr.Accesses)
		}
	}
}

func TestReuseDistanceCountsOtherPages(t *testing.T) {
	// Pattern A B B B A: the reuse distance of A at 4KB granularity is
	// the number of *page switches* between its two accesses (A->B is 1
	// switch, B->B none), matching the "accesses to other pages" metric.
	r := NewReuseAnalyzer()
	a := mem.VirtAddr(0)
	b := mem.VirtAddr(0x1000)
	observeAll(r, []mem.VirtAddr{a, b, b, b, a})
	for _, pr := range r.Results() {
		if pr.Page == 0 {
			if pr.Dist4K != 2 {
				// a=clock0, switch to b (clock1), b, b, switch to a
				// (clock2): distance = 2.
				t.Errorf("dist4K(A) = %v, want 2", pr.Dist4K)
			}
		}
	}
}

func TestDrainAndTotals(t *testing.T) {
	r := NewReuseAnalyzer()
	n := r.Drain(Sequential(0, 1<<20, 4096, 100))
	if n != 100 {
		t.Errorf("drained %d", n)
	}
	sum := Summarize(r.Results())
	if sum.TotalAccesses() != 100 {
		t.Errorf("total accesses = %d", sum.TotalAccesses())
	}
	if sum.TotalPages() == 0 {
		t.Error("no pages characterized")
	}
}

func TestResultsSortedByPage(t *testing.T) {
	r := NewReuseAnalyzer()
	observeAll(r, []mem.VirtAddr{0x5000, 0x1000, 0x3000, 0x1000})
	res := r.Results()
	for i := 1; i < len(res); i++ {
		if res[i].Page <= res[i-1].Page {
			t.Fatal("results must be sorted by page number")
		}
	}
}
