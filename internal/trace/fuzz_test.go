package trace

import (
	"bytes"
	"encoding/binary"
	"testing"

	"pccsim/internal/mem"
)

// collect drains a file stream, failing the fuzz run on any invariant the
// parser must uphold regardless of input: no panics (implicit), and never an
// access that would crash a consumer (negative thread id).
func collect(t *testing.T, fs *FileStream) []Access {
	var accs []Access
	for {
		a, ok := fs.Next()
		if !ok {
			break
		}
		if a.Thread < 0 {
			t.Fatalf("parser produced negative thread id %d", a.Thread)
		}
		accs = append(accs, a)
	}
	return accs
}

// FuzzParseTextTrace feeds arbitrary bytes to the text parser. Inputs the
// parser accepts in full must round-trip: serialize → reparse → reserialize
// is byte-identical.
func FuzzParseTextTrace(f *testing.F) {
	f.Add([]byte("0x1000 r 0\n0x2000 w 3\n# comment\n\n4096\n"))
	f.Add([]byte("0x7fff8000 w\n"))
	f.Add([]byte("deadbeef r 1\n"))
	f.Add([]byte("0x1 r -1\n"))
	f.Add([]byte("0x1 r 99999999999999999999\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		fs := ReadText(bytes.NewReader(data))
		accs := collect(t, fs)
		if fs.Err() != nil {
			return // malformed input, rejected cleanly
		}
		var first bytes.Buffer
		if _, err := WriteText(&first, Slice(accs)); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
		re := ReadText(bytes.NewReader(first.Bytes()))
		reaccs := collect(t, re)
		if err := re.Err(); err != nil {
			t.Fatalf("reparsing our own text output failed: %v", err)
		}
		var second bytes.Buffer
		if _, err := WriteText(&second, Slice(reaccs)); err != nil {
			t.Fatalf("WriteText (second): %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("text round-trip not byte-identical:\n%q\nvs\n%q", first.Bytes(), second.Bytes())
		}
	})
}

// FuzzRecordReplay checks the in-memory recording encodes any access
// sequence losslessly: decoding a recording of arbitrary (address, thread,
// write) tuples must replay them exactly, extreme deltas included.
func FuzzRecordReplay(f *testing.F) {
	f.Add(uint64(0x1000), uint64(0x2000), 3, true)
	f.Add(uint64(1)<<63, uint64(0), 127, false)
	f.Add(^uint64(0), uint64(1), 0, true)
	f.Fuzz(func(t *testing.T, addr1, addr2 uint64, thread int, write bool) {
		if thread < 0 {
			thread = -thread
		}
		accs := []Access{
			{Addr: mem.VirtAddr(addr1)},
			{Addr: mem.VirtAddr(addr2), Thread: thread, Write: write},
			{Addr: mem.VirtAddr(addr1 ^ addr2), Thread: thread / 2},
			{Addr: mem.VirtAddr(addr2), Write: !write},
		}
		rec := Record(Slice(accs), 0)
		if rec == nil {
			t.Fatal("unlimited Record returned nil")
		}
		got := collectStream(rec.Replay())
		if len(got) != len(accs) {
			t.Fatalf("replay count %d, want %d", len(got), len(accs))
		}
		for i := range accs {
			if got[i] != accs[i] {
				t.Fatalf("replay[%d] = %+v, want %+v", i, got[i], accs[i])
			}
		}
	})
}

// collectStream drains any stream (fuzz helper).
func collectStream(s Stream) []Access {
	var out []Access
	for {
		a, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, a)
	}
}

// FuzzParseBinaryTrace feeds arbitrary bytes to the binary parser, then
// checks the same serialize/reparse/reserialize fixpoint on accepted input.
func FuzzParseBinaryTrace(f *testing.F) {
	valid := func(accs []Access) []byte {
		var buf bytes.Buffer
		if _, err := WriteBinary(&buf, Slice(accs)); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(valid(nil))
	f.Add(valid([]Access{{Addr: 0x1000}, {Addr: 0x2000, Write: true, Thread: 3}}))
	f.Add([]byte("PCCTRC1\n\x00\x01\x02")) // truncated record
	f.Add([]byte("not a trace"))
	f.Add(binary.LittleEndian.AppendUint64([]byte("PCCTRC1\n"), uint64(mem.VirtAddr(1<<47))))
	f.Fuzz(func(t *testing.T, data []byte) {
		fs := ReadBinary(bytes.NewReader(data))
		accs := collect(t, fs)
		if fs.Err() != nil {
			return
		}
		first := valid(accs)
		re := ReadBinary(bytes.NewReader(first))
		reaccs := collect(t, re)
		if err := re.Err(); err != nil {
			t.Fatalf("reparsing our own binary output failed: %v", err)
		}
		if len(reaccs) != len(accs) {
			t.Fatalf("round-trip changed access count: %d != %d", len(reaccs), len(accs))
		}
		if !bytes.Equal(first, valid(reaccs)) {
			t.Fatal("binary round-trip not byte-identical")
		}
	})
}
