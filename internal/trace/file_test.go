package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pccsim/internal/mem"
)

func sampleAccesses() []Access {
	return []Access{
		{Addr: 0x1000},
		{Addr: 0x7f0000002040, Write: true, Thread: 3},
		{Addr: 0x2000, Thread: 1},
	}
}

func TestTextRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	n, err := WriteText(&buf, Slice(sampleAccesses()))
	if err != nil || n != 3 {
		t.Fatalf("write: n=%d err=%v", n, err)
	}
	fs := ReadText(&buf)
	got := Collect(fs, 10)
	if fs.Err() != nil {
		t.Fatal(fs.Err())
	}
	want := sampleAccesses()
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("access %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestTextCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\n0x1000 r 0\n  \n# another\n4096 w 2\n"
	fs := ReadText(strings.NewReader(in))
	got := Collect(fs, 10)
	if fs.Err() != nil {
		t.Fatal(fs.Err())
	}
	if len(got) != 2 {
		t.Fatalf("len = %d", len(got))
	}
	if got[1].Addr != 4096 || !got[1].Write || got[1].Thread != 2 {
		t.Errorf("parsed %+v", got[1])
	}
}

func TestTextMalformedAddress(t *testing.T) {
	fs := ReadText(strings.NewReader("zzz r 0\n"))
	if _, ok := fs.Next(); ok {
		t.Fatal("malformed line must end the stream")
	}
	if fs.Err() == nil {
		t.Fatal("error must be surfaced")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	n, err := WriteBinary(&buf, Slice(sampleAccesses()))
	if err != nil || n != 3 {
		t.Fatalf("write: n=%d err=%v", n, err)
	}
	fs := ReadBinary(&buf)
	got := Collect(fs, 10)
	if fs.Err() != nil {
		t.Fatal(fs.Err())
	}
	want := sampleAccesses()
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("access %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestBinaryBadMagic(t *testing.T) {
	fs := ReadBinary(bytes.NewReader([]byte("NOTATRACE........")))
	if _, ok := fs.Next(); ok {
		t.Fatal("bad magic must fail")
	}
	if fs.Err() == nil {
		t.Fatal("error must be surfaced")
	}
}

func TestOpenFileSniffsFormat(t *testing.T) {
	dir := t.TempDir()

	textPath := filepath.Join(dir, "t.trace")
	var tb bytes.Buffer
	if _, err := WriteText(&tb, Slice(sampleAccesses())); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(textPath, tb.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	binPath := filepath.Join(dir, "b.trace")
	var bb bytes.Buffer
	if _, err := WriteBinary(&bb, Slice(sampleAccesses())); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(binPath, bb.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{textPath, binPath} {
		fs, err := OpenFile(path)
		if err != nil {
			t.Fatal(err)
		}
		got := Collect(fs, 10)
		if fs.Err() != nil {
			t.Fatalf("%s: %v", path, fs.Err())
		}
		if len(got) != 3 || got[0].Addr != 0x1000 {
			t.Errorf("%s: got %+v", path, got)
		}
		if err := fs.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOpenFileMissing(t *testing.T) {
	if _, err := OpenFile(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestBinaryLargeThreadIDs(t *testing.T) {
	// Thread ids are 7 bits in the binary format.
	in := []Access{{Addr: 0x1000, Thread: 127}, {Addr: 0x2000, Thread: 5, Write: true}}
	var buf bytes.Buffer
	if _, err := WriteBinary(&buf, Slice(in)); err != nil {
		t.Fatal(err)
	}
	got := Collect(ReadBinary(&buf), 4)
	if got[0].Thread != 127 || got[1].Thread != 5 || !got[1].Write {
		t.Errorf("got %+v", got)
	}
}

func TestExportedStreamReplaysThroughSimPath(t *testing.T) {
	// A synthetic stream exported and re-imported must behave like the
	// original (spot-check the page set).
	orig := Sequential(0x4000_0000, 1<<20, 256, 1000)
	var buf bytes.Buffer
	if _, err := WriteBinary(&buf, orig); err != nil {
		t.Fatal(err)
	}
	pages := map[mem.PageNum]bool{}
	fs := ReadBinary(&buf)
	for {
		a, ok := fs.Next()
		if !ok {
			break
		}
		pages[mem.PageNumber(a.Addr, mem.Page4K)] = true
	}
	want := Sequential(0x4000_0000, 1<<20, 256, 1000)
	for {
		a, ok := want.Next()
		if !ok {
			break
		}
		if !pages[mem.PageNumber(a.Addr, mem.Page4K)] {
			t.Fatalf("page %#x missing after round trip", uint64(a.Addr))
		}
	}
}

// TestBinaryBatchMatchesNext pins NextBatch's bulk-read path against the
// per-record Next path: same records, same clean-EOF and mid-record-cut
// semantics, at batch sizes that land on and off chunk boundaries.
func TestBinaryBatchMatchesNext(t *testing.T) {
	accs := columnarMix(3*binaryBatchRecords + 41)
	var buf bytes.Buffer
	if _, err := WriteBinary(&buf, Slice(accs)); err != nil {
		t.Fatal(err)
	}
	// The binary format narrows threads to 7 bits; mask the expectation.
	for i := range accs {
		accs[i].Thread &= 0x7f
	}
	raw := buf.Bytes()

	for _, size := range []int{1, 7, binaryBatchRecords, binaryBatchRecords + 1, 4 * binaryBatchRecords} {
		fs := ReadBinary(bytes.NewReader(raw))
		var got []Access
		b := make([]Access, size)
		for {
			k := fs.NextBatch(b)
			if k == 0 {
				break
			}
			got = append(got, b[:k]...)
		}
		if fs.Err() != nil {
			t.Fatalf("size=%d: clean stream errored: %v", size, fs.Err())
		}
		if len(got) != len(accs) {
			t.Fatalf("size=%d: got %d records, want %d", size, len(got), len(accs))
		}
		for i := range got {
			if got[i] != accs[i] {
				t.Fatalf("size=%d: record %d = %+v, want %+v", size, i, got[i], accs[i])
			}
		}
	}

	// Truncation mid-record must surface an error from the batch path, just
	// as Next reports it.
	fs := ReadBinary(bytes.NewReader(raw[:len(raw)-4]))
	b := make([]Access, 64)
	n := 0
	for {
		k := fs.NextBatch(b)
		if k == 0 {
			break
		}
		n += k
	}
	if fs.Err() == nil {
		t.Fatal("mid-record truncation must surface an error")
	}
	if want := (len(raw) - len(binaryMagic) - 4) / 9; n != want {
		t.Fatalf("truncated stream yielded %d whole records, want %d", n, want)
	}

	// Truncation on a record boundary is a clean (silent) EOF.
	fs = ReadBinary(bytes.NewReader(raw[:len(raw)-18]))
	for fs.NextBatch(b) != 0 {
	}
	if fs.Err() != nil {
		t.Fatalf("record-boundary truncation must be a clean EOF, got %v", fs.Err())
	}
}

// TestBinaryBatchSteadyStateAllocs: after the first call warms the staging
// buffer, batching allocates nothing per call.
func TestBinaryBatchSteadyStateAllocs(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteBinary(&buf, Sequential(0, 1<<24, 64, 200_000)); err != nil {
		t.Fatal(err)
	}
	fs := ReadBinary(bytes.NewReader(buf.Bytes()))
	b := make([]Access, 1024)
	if fs.NextBatch(b) == 0 { // warm-up: magic + staging buffer
		t.Fatal("empty first batch")
	}
	avg := testing.AllocsPerRun(100, func() {
		if fs.NextBatch(b) == 0 {
			t.Fatal("stream exhausted mid-measurement")
		}
	})
	if avg != 0 {
		t.Fatalf("NextBatch allocates %.1f/op in steady state, want 0", avg)
	}
}
