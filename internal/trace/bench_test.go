package trace

import (
	"bytes"
	"math/rand"
	"testing"
)

// benchAccesses is the shared input for the decode benchmarks: a realistic
// mix (mostly small forward deltas, occasional jumps, sparse writes and
// thread switches) spanning many blocks. ns/op for every ReplayDecode
// benchmark is ns per replayed access.
func benchAccesses() []Access {
	return columnarMix(64 * BlockAccesses)
}

// BenchmarkReplayDecode is the old row-format varint replay: per-access
// decode through NextBatch. Baseline for the columnar comparison.
func BenchmarkReplayDecode(b *testing.B) {
	accs := benchAccesses()
	rec := Record(Slice(accs), 0)
	buf := make([]Access, BlockAccesses)
	b.SetBytes(1) // count accesses, not bytes: ns/op reads as ns/access
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; {
		rs := rec.Replay()
		for {
			k := rs.NextBatch(buf)
			if k == 0 {
				break
			}
			n += k
		}
	}
}

// BenchmarkReplayDecodeColumnar is the block-format whole-block decode into
// a caller buffer — the path the machine's batch drain uses.
func BenchmarkReplayDecodeColumnar(b *testing.B) {
	accs := benchAccesses()
	rec := RecordBlocks(Slice(accs), 0)
	buf := make([]Access, BlockAccesses)
	b.SetBytes(1)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; {
		rs := rec.Replay()
		for {
			k := rs.NextBatch(buf)
			if k == 0 {
				break
			}
			n += k
		}
	}
}

// BenchmarkReplayDecodeColumnarBlock is the zero-copy consumption style:
// NextBlock hands out the stream's internal decode buffer in place, the
// path Machine.Run's drain takes when the source is a block replay.
func BenchmarkReplayDecodeColumnarBlock(b *testing.B) {
	accs := benchAccesses()
	rec := RecordBlocks(Slice(accs), 0)
	b.SetBytes(1)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; {
		rs := rec.Replay()
		for {
			seg := rs.NextBlock(BlockAccesses)
			if len(seg) == 0 {
				break
			}
			n += len(seg)
		}
	}
}

// BenchmarkRecordColumnar measures encode cost (ns per recorded access) —
// paid once per cached stream, so it only needs to stay same-order as the
// old format's encoder.
func BenchmarkRecordColumnar(b *testing.B) {
	accs := benchAccesses()
	b.SetBytes(1)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n += len(accs) {
		if RecordBlocks(Slice(accs), 0) == nil {
			b.Fatal("record failed")
		}
	}
}

// BenchmarkFileBatchBinary measures the binary trace reader's bulk batch
// path (satellite of the columnar work: one buffered read per 512 records).
func BenchmarkFileBatchBinary(b *testing.B) {
	var raw bytes.Buffer
	if _, err := WriteBinary(&raw, UniformRandom(0, 1<<40, 256*1024, rand.New(rand.NewSource(3)))); err != nil {
		b.Fatal(err)
	}
	data := raw.Bytes()
	buf := make([]Access, 1024)
	b.SetBytes(1)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; {
		fs := ReadBinary(bytes.NewReader(data))
		for {
			k := fs.NextBatch(buf)
			if k == 0 {
				break
			}
			n += k
		}
		if fs.Err() != nil {
			b.Fatal(fs.Err())
		}
	}
}
