package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"

	"pccsim/internal/mem"
)

// deltaMask[w] keeps the low w bytes of an 8-byte little-endian load.
var deltaMask = [9]uint64{
	0, 0xff, 0xffff, 0xff_ffff, 0xffff_ffff,
	0xff_ffff_ffff, 0xffff_ffff_ffff, 0xff_ffff_ffff_ffff, ^uint64(0),
}

// This file implements the columnar block trace format, the second
// generation of the in-memory record/replay cache (record.go is the first;
// it remains as the per-record baseline the decode benchmarks compare
// against). Instead of interleaving flags/address/thread varints per access,
// a BlockRecording splits the stream into fixed-capacity blocks and stores
// each field as its own column:
//
//	uvarint count          accesses in the block (1..BlockAccesses)
//	flags byte             bit0 = write bitmap present, bit1 = multi-thread,
//	                       bit2 = uniform delta width
//	uvarint baseAddr       absolute address of the block's first access
//	width byte             uniform only: the shared byte width (1..8) of
//	                       every delta; the control column is then absent
//	ctrl column            ceil((count-1)/2) bytes; nibble i (low nibble of
//	                       byte i/2 for even i, high for odd) encodes the
//	                       byte width minus one (1..8) of delta i
//	delta column           count-1 zigzag deltas, each stored little-endian
//	                       truncated to its control (or uniform) width
//	[write bitmap]         ceil(count/8) bytes, bit i = access i is a write
//	thread column          multi-thread: (uvarint runLen, uvarint
//	                       zigzag(thread)) pairs summing to count;
//	                       single-thread: one uvarint zigzag(thread)
//
// Splitting the width codes out of the byte stream (the stream-vbyte trick)
// is what makes decode fast: a varint reader burns a data-dependent branch
// per payload byte, while this decoder reads the width from the control
// nibble and materializes the delta with one unaligned 8-byte load and a
// mask — no branch whose direction depends on the delta's size. Blocks whose
// deltas all share one width (sequential and strided streams — common, and
// exactly the streams that replay hottest) skip the control column entirely
// and decode with a constant-stride loop. The decoder fills a whole block of
// []Access at a time: writes apply as a bitmap pass only when the block has
// any, and threads fill by run. Blocks are independently decodable (each
// carries its absolute base address), so a prefetcher can decode block N+1
// while the simulator consumes block N.
//
// Space is comparable to the row encoding (the flags byte per access is
// replaced by ~1 bit of bitmap plus per-block headers); the win is decode
// throughput and the in-place handoff: BlockSource lets the consumer run
// directly over the decoded block instead of copying through its own batch
// buffer.

// BlockAccesses is the fixed block capacity. Every block of a recording
// holds exactly this many accesses except the final one, which may be
// shorter. It deliberately matches the vmm scheduler's job quantum so a
// round-robin turn consumes exactly one block in the steady state.
const BlockAccesses = 4096

// columnarMagic identifies the serialized columnar container (Bytes /
// ParseBlockRecording).
const columnarMagic = "PCCCOL1\n"

// Typed decode errors, following the internal/snapshot convention: decoding
// untrusted bytes is total — it returns one of these, it never panics.
var (
	// ErrColumnarMagic reports input that is not a columnar container.
	ErrColumnarMagic = errors.New("trace: columnar: bad magic")
	// ErrColumnarTruncated reports input that ends mid-structure.
	ErrColumnarTruncated = errors.New("trace: columnar: truncated")
	// ErrColumnarCorrupt reports structurally invalid input (bad counts,
	// overlong varints, thread runs that do not sum to the block count).
	ErrColumnarCorrupt = errors.New("trace: columnar: corrupt")
)

// BlockSource is a BatchStream whose decoded blocks can be consumed in
// place, skipping the consumer-side copy. vmm.Machine.Run feeds its
// simulation loop directly from these slices when a job's stream implements
// it.
type BlockSource interface {
	BatchStream
	// NextBlock returns up to max accesses decoded in place. The returned
	// slice is owned by the stream and valid only until the next
	// NextBlock/DecodeBlock/Next/NextBatch call; nil/empty means exhausted.
	NextBlock(max int) []Access
	// DecodeBlock decodes the next whole block into buf and returns the
	// access count (0 when exhausted). buf should have room for
	// BlockAccesses; shorter buffers are served by copy. Unlike NextBlock
	// the result does not alias stream-internal storage, so a prefetcher
	// may hand the filled buf to another goroutine and keep decoding.
	DecodeBlock(buf []Access) int
}

// blockRef locates one encoded block inside a BlockRecording.
type blockRef struct {
	off   int
	count uint32
}

// BlockRecording is an immutable, compactly encoded, replayable copy of a
// finite access stream in the columnar block format. It is safe for
// concurrent Replay calls.
type BlockRecording struct {
	data   []byte
	blocks []blockRef
	count  uint64
}

// RecordBlocks drains s into a BlockRecording. It returns nil as soon as the
// encoding exceeds maxBytes (maxBytes <= 0 means unlimited) — the stream is
// then partially consumed and the caller falls back to live generation.
// RecordBlocks does not close s; the caller owns the stream's lifecycle.
func RecordBlocks(s Stream, maxBytes int64) *BlockRecording {
	bs := Batched(s)
	r := &BlockRecording{}
	stage := make([]Access, BlockAccesses)
	for {
		// Fill a whole block before encoding, so every block except the
		// final one holds exactly BlockAccesses even over chunky producers.
		n := 0
		for n < BlockAccesses {
			k := bs.NextBatch(stage[n:])
			if k == 0 {
				break
			}
			n += k
		}
		if n == 0 {
			// Trim the append slack: recordings are long-lived.
			r.data = append([]byte(nil), r.data...)
			return r
		}
		r.appendBlock(stage[:n])
		r.count += uint64(n)
		if maxBytes > 0 && int64(len(r.data)) > maxBytes {
			return nil
		}
	}
}

// appendBlock encodes one staged block onto r.data.
func (r *BlockRecording) appendBlock(acc []Access) {
	off := len(r.data)
	hasWrites := false
	multiThread := false
	for i := range acc {
		if acc[i].Write {
			hasWrites = true
		}
		if acc[i].Thread != acc[0].Thread {
			multiThread = true
		}
	}
	// Detect uniform-width blocks (sequential/strided streams): those drop
	// the control column and decode with a constant-stride loop. Encode is
	// the cold path (once per cached stream), so the extra width scan is
	// cheap.
	nd := len(acc) - 1
	uniform := nd > 0
	w0 := 0
	prev := uint64(acc[0].Addr)
	for i := 0; i < nd; i++ {
		a := uint64(acc[i+1].Addr)
		w := (bits.Len64(zigzag(int64(a-prev))|1) + 7) / 8 // byte width 1..8
		prev = a
		if w0 == 0 {
			w0 = w
		} else if w != w0 {
			uniform = false
			break
		}
	}
	flags := byte(0)
	if hasWrites {
		flags |= 1
	}
	if multiThread {
		flags |= 2
	}
	if uniform {
		flags |= 4
	}
	r.data = binary.AppendUvarint(r.data, uint64(len(acc)))
	r.data = append(r.data, flags)
	r.data = binary.AppendUvarint(r.data, uint64(acc[0].Addr))
	prev = uint64(acc[0].Addr)
	if uniform {
		r.data = append(r.data, byte(w0))
		for i := 0; i < nd; i++ {
			a := uint64(acc[i+1].Addr)
			u := zigzag(int64(a - prev))
			prev = a
			for b := 0; b < w0; b++ {
				r.data = append(r.data, byte(u>>(8*b)))
			}
		}
	} else {
		// Control nibbles are fixed-length, so reserve them up front and
		// fill while appending the variable-length delta payload behind
		// them.
		ctrlOff := len(r.data)
		r.data = append(r.data, make([]byte, (nd+1)/2)...)
		for i := 0; i < nd; i++ {
			a := uint64(acc[i+1].Addr)
			u := zigzag(int64(a - prev))
			prev = a
			w := (bits.Len64(u|1) + 7) / 8
			if i&1 == 0 {
				r.data[ctrlOff+i/2] = byte(w - 1)
			} else {
				r.data[ctrlOff+i/2] |= byte(w-1) << 4
			}
			for b := 0; b < w; b++ {
				r.data = append(r.data, byte(u>>(8*b)))
			}
		}
	}
	if hasWrites {
		bm := make([]byte, (len(acc)+7)/8)
		for i := range acc {
			if acc[i].Write {
				bm[i>>3] |= 1 << (i & 7)
			}
		}
		r.data = append(r.data, bm...)
	}
	if multiThread {
		i := 0
		for i < len(acc) {
			t := acc[i].Thread
			j := i + 1
			for j < len(acc) && acc[j].Thread == t {
				j++
			}
			r.data = binary.AppendUvarint(r.data, uint64(j-i))
			r.data = binary.AppendUvarint(r.data, zigzag(int64(t)))
			i = j
		}
	} else {
		r.data = binary.AppendUvarint(r.data, zigzag(int64(acc[0].Thread)))
	}
	r.blocks = append(r.blocks, blockRef{off: off, count: uint32(len(acc))})
}

// Accesses returns the number of recorded accesses.
func (r *BlockRecording) Accesses() uint64 { return r.count }

// Size returns the encoded size in bytes (excluding the per-block index,
// 16 bytes per ~4K accesses).
func (r *BlockRecording) Size() int { return len(r.data) }

// Blocks returns the number of encoded blocks.
func (r *BlockRecording) Blocks() int { return len(r.blocks) }

// Bytes serializes the recording into the standalone columnar container:
// magic, uvarint total access count, uvarint block count, then the encoded
// blocks. ParseBlockRecording inverts it.
func (r *BlockRecording) Bytes() []byte {
	out := make([]byte, 0, len(columnarMagic)+2*binary.MaxVarintLen64+len(r.data))
	out = append(out, columnarMagic...)
	out = binary.AppendUvarint(out, r.count)
	out = binary.AppendUvarint(out, uint64(len(r.blocks)))
	return append(out, r.data...)
}

// ParseBlockRecording decodes a serialized columnar container. It validates
// every block structurally (by decoding it into a scratch buffer), so a
// successful parse guarantees replay can never fail; malformed input yields
// a typed error — ErrColumnarMagic, ErrColumnarTruncated or
// ErrColumnarCorrupt — never a panic.
func ParseBlockRecording(data []byte) (*BlockRecording, error) {
	if len(data) < len(columnarMagic) || string(data[:len(columnarMagic)]) != columnarMagic {
		return nil, ErrColumnarMagic
	}
	rest := data[len(columnarMagic):]
	total, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, ErrColumnarTruncated
	}
	rest = rest[n:]
	nblocks, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, ErrColumnarTruncated
	}
	rest = rest[n:]
	// A block encodes at least 4 bytes (count, flags, base, thread); bound
	// nblocks by the remaining input before allocating the index.
	if nblocks > uint64(len(rest)) {
		return nil, fmt.Errorf("%w: %d blocks in %d bytes", ErrColumnarCorrupt, nblocks, len(rest))
	}
	r := &BlockRecording{data: rest, blocks: make([]blockRef, 0, nblocks)}
	scratch := make([]Access, BlockAccesses)
	off := 0
	var sum uint64
	for b := uint64(0); b < nblocks; b++ {
		count, end, err := validateBlock(rest, off, scratch)
		if err != nil {
			return nil, fmt.Errorf("block %d at %d: %w", b, off, err)
		}
		r.blocks = append(r.blocks, blockRef{off: off, count: uint32(count)})
		sum += uint64(count)
		off = end
	}
	if off != len(rest) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrColumnarCorrupt, len(rest)-off)
	}
	if sum != total {
		return nil, fmt.Errorf("%w: header count %d, blocks hold %d", ErrColumnarCorrupt, total, sum)
	}
	r.count = sum
	return r, nil
}

// validateBlock decodes the block starting at off for its side effects only,
// returning its access count and end offset.
func validateBlock(data []byte, off int, scratch []Access) (count, end int, err error) {
	c, end, err := peekBlockCount(data, off)
	if err != nil {
		return 0, 0, err
	}
	n, end, err := decodeBlock(data, off, scratch[:c])
	if err != nil {
		return 0, 0, err
	}
	return n, end, nil
}

// peekBlockCount reads the count header of the block at off.
func peekBlockCount(data []byte, off int) (count, afterCount int, err error) {
	u, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return 0, 0, ErrColumnarTruncated
	}
	if u == 0 || u > BlockAccesses {
		return 0, 0, fmt.Errorf("%w: block count %d", ErrColumnarCorrupt, u)
	}
	return int(u), off + n, nil
}

// uvarintAt is the checked varint reader the block decoder uses; unlike
// binary.Uvarint it reports truncation and overlength explicitly so decode
// stays total over arbitrary bytes.
func uvarintAt(data []byte, off int) (u uint64, next int, err error) {
	var shift uint
	for {
		if off >= len(data) {
			return 0, 0, ErrColumnarTruncated
		}
		b := data[off]
		off++
		if b < 0x80 {
			if shift == 63 && b > 1 {
				return 0, 0, fmt.Errorf("%w: varint overflow", ErrColumnarCorrupt)
			}
			return u | uint64(b)<<shift, off, nil
		}
		u |= uint64(b&0x7f) << shift
		shift += 7
		if shift > 63 {
			return 0, 0, fmt.Errorf("%w: varint overflow", ErrColumnarCorrupt)
		}
	}
}

// decodeBlock decodes the block starting at off into buf, which must hold
// exactly the block's count (callers size it via peekBlockCount or the block
// index). It returns the count and the block's end offset. Decode is total:
// malformed input yields a typed error, never a panic or out-of-bounds
// access.
func decodeBlock(data []byte, off int, buf []Access) (n, end int, err error) {
	count, off, err := peekBlockCount(data, off)
	if err != nil {
		return 0, 0, err
	}
	if count != len(buf) {
		return 0, 0, fmt.Errorf("%w: block count %d, buffer %d", ErrColumnarCorrupt, count, len(buf))
	}
	if off >= len(data) {
		return 0, 0, ErrColumnarTruncated
	}
	flags := data[off]
	off++
	if flags&^byte(7) != 0 {
		return 0, 0, fmt.Errorf("%w: flags %#x", ErrColumnarCorrupt, flags)
	}

	// Address column: absolute base, control nibbles, then packed deltas.
	// The loop body writes the full Access struct so stale Thread/Write
	// values from a previous decode can never leak through.
	prev, off, err := uvarintAt(data, off)
	if err != nil {
		return 0, 0, err
	}
	buf[0] = Access{Addr: mem.VirtAddr(prev)}
	nd := count - 1
	if flags&4 != 0 {
		off, err = decodeUniformDeltas(data, off, buf, prev)
		if err != nil {
			return 0, 0, err
		}
		return decodeBlockTail(data, off, buf, flags, count)
	}
	ctrlLen := (nd + 1) / 2
	if off+ctrlLen > len(data) {
		return 0, 0, ErrColumnarTruncated
	}
	ctrl := data[off : off+ctrlLen]
	off += ctrlLen
	// The width comes from the control nibble, so the payload read is one
	// unaligned 8-byte load and a mask — no branch depends on the delta's
	// size. The main loop decodes a control byte (two deltas) per
	// iteration; widths are clamped to 1..8 and validated branchlessly by
	// accumulating the nibbles' high bits into bad. Only the last few
	// deltas (within 16 bytes of the input's end) take the checked
	// byte-at-a-time tail path.
	var bad byte
	i := 0
	for ; i+2 <= nd && off <= len(data)-16; i += 2 {
		cb := ctrl[i>>1]
		bad |= cb & 0x88
		w := int(cb&7) + 1
		prev += uint64(unzigzag(binary.LittleEndian.Uint64(data[off:]) & deltaMask[w]))
		buf[i+1] = Access{Addr: mem.VirtAddr(prev)}
		off += w
		w = int(cb>>4&7) + 1
		prev += uint64(unzigzag(binary.LittleEndian.Uint64(data[off:]) & deltaMask[w]))
		buf[i+2] = Access{Addr: mem.VirtAddr(prev)}
		off += w
	}
	for ; i < nd; i++ {
		nib := ctrl[i>>1] >> ((i & 1) * 4) & 0xf
		bad |= nib & 8
		w := int(nib&7) + 1
		if off+w > len(data) {
			return 0, 0, ErrColumnarTruncated
		}
		var u uint64
		for b := 0; b < w; b++ {
			u |= uint64(data[off+b]) << (8 * b)
		}
		off += w
		prev += uint64(unzigzag(u))
		buf[i+1] = Access{Addr: mem.VirtAddr(prev)}
	}
	if bad != 0 {
		return 0, 0, fmt.Errorf("%w: delta width nibble > 7", ErrColumnarCorrupt)
	}
	return decodeBlockTail(data, off, buf, flags, count)
}

// decodeUniformDeltas decodes a uniform-width delta column (flag bit 2): a
// width byte then count-1 fixed-width little-endian zigzag deltas. The
// constant stride lets the common width-1 case run as a plain byte loop.
func decodeUniformDeltas(data []byte, off int, buf []Access, prev uint64) (int, error) {
	nd := len(buf) - 1
	if off >= len(data) {
		return 0, ErrColumnarTruncated
	}
	w := int(data[off])
	off++
	if w < 1 || w > 8 {
		return 0, fmt.Errorf("%w: uniform delta width %d", ErrColumnarCorrupt, w)
	}
	if off+nd*w > len(data) {
		return 0, ErrColumnarTruncated
	}
	col := data[off : off+nd*w]
	off += nd * w
	if w == 1 {
		for i, b := range col {
			prev += uint64(unzigzag(uint64(b)))
			buf[i+1] = Access{Addr: mem.VirtAddr(prev)}
		}
		return off, nil
	}
	mask := deltaMask[w]
	i := 0
	for ; i < nd && (i+1)*w+8 <= len(col)+w; i++ {
		// One unaligned 8-byte load per delta while at least 8 bytes of
		// input remain past the delta's start.
		if i*w+8 > len(col) {
			break
		}
		prev += uint64(unzigzag(binary.LittleEndian.Uint64(col[i*w:]) & mask))
		buf[i+1] = Access{Addr: mem.VirtAddr(prev)}
	}
	for ; i < nd; i++ {
		var u uint64
		for b := 0; b < w; b++ {
			u |= uint64(col[i*w+b]) << (8 * b)
		}
		prev += uint64(unzigzag(u))
		buf[i+1] = Access{Addr: mem.VirtAddr(prev)}
	}
	return off, nil
}

// decodeBlockTail applies the write bitmap and thread column that follow a
// block's address column.
func decodeBlockTail(data []byte, off int, buf []Access, flags byte, count int) (n, end int, err error) {
	// Write bitmap, only present when the block has any write.
	if flags&1 != 0 {
		bmLen := (count + 7) / 8
		if off+bmLen > len(data) {
			return 0, 0, ErrColumnarTruncated
		}
		bm := data[off : off+bmLen]
		off += bmLen
		// buf was freshly written with zero Write fields by the address
		// pass, so only set bits need touching; writes are sparse in real
		// streams, making this much cheaper than a bit test per access.
		// Padding bits past count are ignored, as the per-bit reader did.
		for bi := 0; bi < count/8; bi++ {
			base := bi * 8
			for b := bm[bi]; b != 0; b &= b - 1 {
				buf[base+bits.TrailingZeros8(b)].Write = true
			}
		}
		if count&7 != 0 {
			base := count &^ 7
			for b := bm[count/8] & byte(1<<(count&7)-1); b != 0; b &= b - 1 {
				buf[base+bits.TrailingZeros8(b)].Write = true
			}
		}
	}

	// Thread column: one value for the whole block, or run-length pairs.
	if flags&2 == 0 {
		u, o, err := uvarintAt(data, off)
		if err != nil {
			return 0, 0, err
		}
		off = o
		if t := int(unzigzag(u)); t != 0 {
			for i := 0; i < count; i++ {
				buf[i].Thread = t
			}
		}
		return count, off, nil
	}
	filled := 0
	for filled < count {
		rl, o, err := uvarintAt(data, off)
		if err != nil {
			return 0, 0, err
		}
		tv, o, err := uvarintAt(data, o)
		if err != nil {
			return 0, 0, err
		}
		off = o
		if rl == 0 || rl > uint64(count-filled) {
			return 0, 0, fmt.Errorf("%w: thread run %d with %d slots left", ErrColumnarCorrupt, rl, count-filled)
		}
		// Thread 0 is already in place from the address pass's zeroing.
		if t := int(unzigzag(tv)); t != 0 {
			for i := filled; i < filled+int(rl); i++ {
				buf[i].Thread = t
			}
		}
		filled += int(rl)
	}
	return count, off, nil
}

// Replay returns a fresh stream over the recording. Replays are independent
// and byte-identical to the recorded stream; any number may run concurrently
// over the same BlockRecording.
func (r *BlockRecording) Replay() *BlockReplayStream { return &BlockReplayStream{r: r} }

// BlockReplayStream decodes a BlockRecording one whole block at a time. It
// implements Stream, BatchStream and BlockSource; a decode error (possible
// only on recordings assembled from unvalidated bytes) ends the stream and
// is reported by Err.
type BlockReplayStream struct {
	r    *BlockRecording
	next int      // next block index to decode
	buf  []Access // lazily allocated internal decode buffer
	dec  []Access // current decoded window into buf
	pos  int      // consumption cursor within dec
	err  error
}

// fill decodes the next block into the internal buffer; false at stream end.
func (rs *BlockReplayStream) fill() bool {
	if rs.err != nil || rs.next >= len(rs.r.blocks) {
		return false
	}
	if rs.buf == nil {
		rs.buf = make([]Access, BlockAccesses)
	}
	ref := rs.r.blocks[rs.next]
	n, _, err := decodeBlock(rs.r.data, ref.off, rs.buf[:ref.count])
	if err != nil {
		rs.err = err
		return false
	}
	rs.next++
	rs.dec = rs.buf[:n]
	rs.pos = 0
	return true
}

// Next implements Stream.
func (rs *BlockReplayStream) Next() (Access, bool) {
	if rs.pos >= len(rs.dec) && !rs.fill() {
		return Access{}, false
	}
	a := rs.dec[rs.pos]
	rs.pos++
	return a, true
}

// NextBatch implements BatchStream. Block-aligned requests with room for the
// whole block decode straight into buf; anything else is served from the
// internal block buffer.
func (rs *BlockReplayStream) NextBatch(buf []Access) int {
	k := 0
	for k < len(buf) {
		if rs.pos >= len(rs.dec) {
			if rs.err != nil || rs.next >= len(rs.r.blocks) {
				break
			}
			if ref := rs.r.blocks[rs.next]; int(ref.count) <= len(buf)-k {
				n, _, err := decodeBlock(rs.r.data, ref.off, buf[k:k+int(ref.count)])
				if err != nil {
					rs.err = err
					break
				}
				rs.next++
				k += n
				continue
			}
			if !rs.fill() {
				break
			}
		}
		n := copy(buf[k:], rs.dec[rs.pos:])
		rs.pos += n
		k += n
	}
	return k
}

// NextBlock implements BlockSource.
func (rs *BlockReplayStream) NextBlock(max int) []Access {
	if max <= 0 {
		return nil
	}
	if rs.pos >= len(rs.dec) && !rs.fill() {
		return nil
	}
	w := rs.dec[rs.pos:]
	if len(w) > max {
		w = w[:max]
	}
	rs.pos += len(w)
	return w
}

// DecodeBlock implements BlockSource.
func (rs *BlockReplayStream) DecodeBlock(buf []Access) int {
	if rs.pos < len(rs.dec) {
		// Unaligned leftover (the stream was partially consumed through
		// Next/NextBatch first): drain it by copy so the cursor realigns.
		n := copy(buf, rs.dec[rs.pos:])
		rs.pos += n
		return n
	}
	if rs.err != nil || rs.next >= len(rs.r.blocks) {
		return 0
	}
	ref := rs.r.blocks[rs.next]
	if int(ref.count) > len(buf) {
		if !rs.fill() {
			return 0
		}
		n := copy(buf, rs.dec)
		rs.pos = n
		return n
	}
	n, _, err := decodeBlock(rs.r.data, ref.off, buf[:ref.count])
	if err != nil {
		rs.err = err
		return 0
	}
	rs.next++
	return n
}

// Err reports the decode error that ended the stream, nil after a clean end.
// Recordings built by RecordBlocks or accepted by ParseBlockRecording never
// produce one.
func (rs *BlockReplayStream) Err() error { return rs.err }

// BlockStats summarizes a recording's encoded shape (cmd/pcctrace and
// cmd/tracechar surface it).
type BlockStats struct {
	Blocks         int
	Accesses       uint64
	Bytes          int
	BytesPerAccess float64
	// SingleThreadBlocks counts blocks whose accesses all share one thread
	// (encoded without a run-length column).
	SingleThreadBlocks int
	// WriteBlocks counts blocks carrying a write bitmap.
	WriteBlocks int
	// DeltaBytes histograms the encoded width of the address deltas:
	// DeltaBytes[i] deltas took i+1 payload bytes.
	DeltaBytes [8]uint64
}

// Stats scans the recording and reports its encoded shape.
func (r *BlockRecording) Stats() BlockStats {
	st := BlockStats{Blocks: len(r.blocks), Accesses: r.count, Bytes: len(r.data)}
	if r.count > 0 {
		st.BytesPerAccess = float64(len(r.data)) / float64(r.count)
	}
	for _, ref := range r.blocks {
		off := ref.off
		_, off, err := peekBlockCount(r.data, off)
		if err != nil || off >= len(r.data) {
			break // unreachable on recordings we built or validated
		}
		flags := r.data[off]
		off++
		if flags&1 != 0 {
			st.WriteBlocks++
		}
		if flags&2 == 0 {
			st.SingleThreadBlocks++
		}
		_, off, err = uvarintAt(r.data, off) // base address
		if err != nil {
			break
		}
		nd := int(ref.count) - 1
		if flags&4 != 0 {
			// Uniform blocks carry one width byte and no control column.
			if nd > 0 && off < len(r.data) {
				if w := int(r.data[off]); w >= 1 && w <= 8 {
					st.DeltaBytes[w-1] += uint64(nd)
				}
			}
			continue
		}
		// Delta widths are read straight off the control column.
		if off+(nd+1)/2 > len(r.data) {
			break
		}
		ctrl := r.data[off : off+(nd+1)/2]
		for i := 0; i < nd; i++ {
			if w := int(ctrl[i>>1]>>((i&1)*4)) & 0xf; w < len(st.DeltaBytes) {
				st.DeltaBytes[w]++
			}
		}
	}
	return st
}

// String renders the stats as the one-per-line table the CLI tools print.
func (st BlockStats) String() string {
	s := fmt.Sprintf("blocks=%d accesses=%d bytes=%d bytes/access=%.3f single-thread-blocks=%d write-blocks=%d",
		st.Blocks, st.Accesses, st.Bytes, st.BytesPerAccess, st.SingleThreadBlocks, st.WriteBlocks)
	for i, c := range st.DeltaBytes {
		if c > 0 {
			s += fmt.Sprintf(" delta%dB=%d", i+1, c)
		}
	}
	return s
}
