package trace

import (
	"encoding/binary"

	"pccsim/internal/mem"
)

// This file implements in-memory trace recording: a finite access stream is
// drained once into a compact delta-encoded buffer and replayed any number
// of times. The experiment grids use this (behind a shared cache) to pay
// workload generation — native graph kernels, synthetic mixture models —
// once per grid instead of once per cell, mirroring the paper's §4
// methodology of recording the workload trace once and replaying it across
// configurations.
//
// Encoding, per access:
//
//	flags byte: bit0 = write, bit1 = a thread uvarint follows
//	uvarint:    zigzag(addr - prevAddr)
//	[uvarint:   zigzag(thread), only when the thread changed]
//
// Address deltas dominate and are small for the sequential portions of real
// streams; thread ids change rarely (runs of same-thread accesses), so the
// steady-state cost is typically 3-7 bytes per access versus 24 bytes for a
// materialized []Access.

// zigzag maps signed deltas onto small unsigned varints.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Recording is an immutable, compactly encoded, replayable copy of a finite
// access stream. It is safe for concurrent Replay calls.
type Recording struct {
	data  []byte
	count uint64
}

// Record drains s into a Recording. It returns nil as soon as the encoding
// exceeds maxBytes (maxBytes <= 0 means unlimited) — the stream is then
// partially consumed and the caller falls back to live generation. Record
// does not close s; the caller owns the stream's lifecycle.
func Record(s Stream, maxBytes int64) *Recording {
	bs := Batched(s)
	r := &Recording{}
	var (
		buf    [1024]Access
		prev   uint64
		thread int
	)
	for {
		n := bs.NextBatch(buf[:])
		if n == 0 {
			// Trim the append slack: recordings are long-lived.
			r.data = append([]byte(nil), r.data...)
			return r
		}
		for _, a := range buf[:n] {
			flags := byte(0)
			if a.Write {
				flags |= 1
			}
			if a.Thread != thread {
				flags |= 2
			}
			r.data = append(r.data, flags)
			r.data = binary.AppendUvarint(r.data, zigzag(int64(uint64(a.Addr)-prev)))
			if flags&2 != 0 {
				r.data = binary.AppendUvarint(r.data, zigzag(int64(a.Thread)))
				thread = a.Thread
			}
			prev = uint64(a.Addr)
		}
		r.count += uint64(n)
		if maxBytes > 0 && int64(len(r.data)) > maxBytes {
			return nil
		}
	}
}

// Accesses returns the number of recorded accesses.
func (r *Recording) Accesses() uint64 { return r.count }

// Size returns the encoded size in bytes.
func (r *Recording) Size() int { return len(r.data) }

// Replay returns a fresh stream over the recording. Replays are independent
// and byte-identical to the recorded stream; any number may run concurrently
// over the same Recording.
func (r *Recording) Replay() *ReplayStream { return &ReplayStream{data: r.data} }

// ReplayStream decodes a Recording incrementally. It implements BatchStream
// with a native bulk decode.
type ReplayStream struct {
	data   []byte
	off    int
	prev   uint64
	thread int
}

// Next implements Stream.
func (rs *ReplayStream) Next() (Access, bool) {
	var one [1]Access
	if rs.NextBatch(one[:]) == 0 {
		return Access{}, false
	}
	return one[0], true
}

// NextBatch implements BatchStream. The decode loop is the grid's
// second-hottest path after the simulator step (every cached run decodes
// every access), so the varint reader is hand-inlined over local cursors:
// the encoding is our own, so the error paths binary.Uvarint pays for are
// unreachable here.
func (rs *ReplayStream) NextBatch(buf []Access) int {
	data := rs.data
	off, prev, thread := rs.off, rs.prev, rs.thread
	k := 0
	for k < len(buf) && off < len(data) {
		flags := data[off]
		off++
		var u uint64
		var shift uint
		for {
			b := data[off]
			off++
			if b < 0x80 {
				u |= uint64(b) << shift
				break
			}
			u |= uint64(b&0x7f) << shift
			shift += 7
		}
		prev += uint64(unzigzag(u))
		if flags&2 != 0 {
			u, shift = 0, 0
			for {
				b := data[off]
				off++
				if b < 0x80 {
					u |= uint64(b) << shift
					break
				}
				u |= uint64(b&0x7f) << shift
				shift += 7
			}
			thread = int(unzigzag(u))
		}
		buf[k] = Access{Addr: mem.VirtAddr(prev), Thread: thread, Write: flags&1 != 0}
		k++
	}
	rs.off, rs.prev, rs.thread = off, prev, thread
	return k
}
