package trace

import (
	"sort"

	"pccsim/internal/mem"
)

// PageClass is the Fig. 2 taxonomy of page behaviour derived from reuse
// distance at two page granularities.
type PageClass int

const (
	// TLBFriendly pages have low reuse distance already at 4KB: the base
	// page translation stays resident, so huge pages add little.
	TLBFriendly PageClass = iota
	// HUB (High-reUse TLB-sensitive) pages have high 4KB reuse distance
	// but low 2MB-region reuse distance: the best promotion candidates.
	HUB
	// LowReuse pages have high reuse distance at both granularities:
	// promotion cannot help them.
	LowReuse
)

func (c PageClass) String() string {
	switch c {
	case TLBFriendly:
		return "TLB-friendly"
	case HUB:
		return "HUB"
	case LowReuse:
		return "low-reuse"
	}
	return "unknown"
}

// PageReuse is the per-4KB-page result of the reuse analysis: the average
// reuse distance of the page itself and of the 2MB region containing it.
type PageReuse struct {
	Page     mem.PageNum // 4KB page number
	Dist4K   float64     // mean 4KB page reuse distance
	Dist2M   float64     // mean reuse distance of the enclosing 2MB region
	Accesses uint64      // how many times the page was touched
	Class    PageClass
}

// ReuseAnalyzer measures page-granularity reuse distances at 4KB and 2MB
// simultaneously, online, over a stream of accesses. Reuse distance here is
// the paper's definition: the number of accesses to *other* pages between
// two consecutive accesses to a given page, measured at each granularity.
//
// The exact stack-distance variant would cost O(log n) per access with a
// balanced tree over millions of pages; the paper's classification only
// needs "is the typical gap above or below the L2 TLB capacity", for which
// the inter-access gap in page-switch counts is the faithful statistic
// (every page switch is an access to another page).
type ReuseAnalyzer struct {
	// Per-granularity state: a clock that ticks once per access that goes
	// to a *different* page than the previous access (page-switch clock),
	// and per-page last-seen times and accumulated gaps.
	clock4K, clock2M uint64
	last4K           map[mem.PageNum]uint64
	last2M           map[mem.PageNum]uint64
	sum4K            map[mem.PageNum]float64
	cnt4K            map[mem.PageNum]uint64
	sum2M            map[mem.PageNum]float64
	cnt2M            map[mem.PageNum]uint64
	touch4K          map[mem.PageNum]uint64 // raw access counts per 4KB page
	prev4K           mem.PageNum
	prev2M           mem.PageNum
	started          bool
}

// NewReuseAnalyzer returns an empty analyzer.
func NewReuseAnalyzer() *ReuseAnalyzer {
	return &ReuseAnalyzer{
		last4K:  make(map[mem.PageNum]uint64),
		last2M:  make(map[mem.PageNum]uint64),
		sum4K:   make(map[mem.PageNum]float64),
		cnt4K:   make(map[mem.PageNum]uint64),
		sum2M:   make(map[mem.PageNum]float64),
		cnt2M:   make(map[mem.PageNum]uint64),
		touch4K: make(map[mem.PageNum]uint64),
	}
}

// Observe feeds one access.
func (r *ReuseAnalyzer) Observe(a mem.VirtAddr) {
	p4 := mem.PageNumber(a, mem.Page4K)
	p2 := mem.PageNumber(a, mem.Page2M)

	if r.started {
		if p4 != r.prev4K {
			r.clock4K++
		}
		if p2 != r.prev2M {
			r.clock2M++
		}
	} else {
		r.started = true
	}

	r.touch4K[p4]++
	if t, ok := r.last4K[p4]; ok {
		r.sum4K[p4] += float64(r.clock4K - t)
		r.cnt4K[p4]++
	}
	r.last4K[p4] = r.clock4K

	if t, ok := r.last2M[p2]; ok {
		r.sum2M[p2] += float64(r.clock2M - t)
		r.cnt2M[p2]++
	}
	r.last2M[p2] = r.clock2M

	r.prev4K, r.prev2M = p4, p2
}

// Drain feeds an entire stream.
func (r *ReuseAnalyzer) Drain(s Stream) uint64 {
	var n uint64
	for {
		a, ok := s.Next()
		if !ok {
			return n
		}
		r.Observe(a.Addr)
		n++
	}
}

// ClassifyThreshold is the "low" reuse distance boundary: the paper uses
// 1024, a common second-level TLB entry count — pages with mean reuse
// distance below it are likely retained in the TLB hierarchy.
const ClassifyThreshold = 1024

// Results computes the per-page characterization, sorted by page number.
// Pages touched once have no reuse samples at 4KB; they are classified using
// the 2MB-region reuse (cold single-touch data is TLB-friendly if its region
// is hot, low-reuse otherwise).
func (r *ReuseAnalyzer) Results() []PageReuse {
	out := make([]PageReuse, 0, len(r.touch4K))
	for p4, touches := range r.touch4K {
		p2 := mem.PageNum(uint64(p4) >> (mem.Page2M.Shift() - mem.Page4K.Shift()))
		pr := PageReuse{Page: p4, Accesses: touches}
		if c := r.cnt4K[p4]; c > 0 {
			pr.Dist4K = r.sum4K[p4] / float64(c)
		} else {
			// No 4KB reuse observed: treat as maximal distance.
			pr.Dist4K = float64(r.clock4K + 1)
		}
		if c := r.cnt2M[p2]; c > 0 {
			pr.Dist2M = r.sum2M[p2] / float64(c)
		} else {
			pr.Dist2M = float64(r.clock2M + 1)
		}
		pr.Class = Classify(pr.Dist4K, pr.Dist2M)
		out = append(out, pr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Page < out[j].Page })
	return out
}

// Classify applies the Fig. 2 taxonomy to a (4KB, 2MB) reuse distance pair.
func Classify(dist4K, dist2M float64) PageClass {
	switch {
	case dist4K < ClassifyThreshold:
		return TLBFriendly
	case dist2M < ClassifyThreshold:
		return HUB
	default:
		return LowReuse
	}
}

// Summary aggregates a characterization into class counts and access-weighted
// class shares.
type Summary struct {
	Pages    [3]uint64 // pages per class, indexed by PageClass
	Accesses [3]uint64 // accesses landing on pages of each class
}

// Summarize folds per-page results into a Summary.
func Summarize(results []PageReuse) Summary {
	var s Summary
	for _, r := range results {
		s.Pages[r.Class]++
		s.Accesses[r.Class] += r.Accesses
	}
	return s
}

// TotalPages returns the characterized page count.
func (s Summary) TotalPages() uint64 { return s.Pages[0] + s.Pages[1] + s.Pages[2] }

// TotalAccesses returns the access count across classes.
func (s Summary) TotalAccesses() uint64 { return s.Accesses[0] + s.Accesses[1] + s.Accesses[2] }
