package trace

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pccsim/internal/mem"
)

func addrs(s Stream) []mem.VirtAddr {
	var out []mem.VirtAddr
	for {
		a, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, a.Addr)
	}
}

func TestSliceStream(t *testing.T) {
	in := []Access{{Addr: 1}, {Addr: 2}, {Addr: 3}}
	s := Slice(in)
	got := addrs(s)
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("got %v", got)
	}
	if _, ok := s.Next(); ok {
		t.Error("exhausted stream must stay exhausted")
	}
}

func TestLimit(t *testing.T) {
	s := Limit(Sequential(0, 1<<20, 8, 1000), 10)
	if n := Count(s); n != 10 {
		t.Errorf("count = %d, want 10", n)
	}
	// Limit larger than the stream passes everything through.
	s = Limit(Sequential(0, 1<<20, 8, 5), 100)
	if n := Count(s); n != 5 {
		t.Errorf("count = %d, want 5", n)
	}
}

func TestConcat(t *testing.T) {
	s := Concat(
		Slice([]Access{{Addr: 1}, {Addr: 2}}),
		Slice(nil),
		Slice([]Access{{Addr: 3}}),
	)
	got := addrs(s)
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("got %v", got)
	}
}

func TestInterleaveChunksAndThreadTags(t *testing.T) {
	a := Slice([]Access{{Addr: 10}, {Addr: 11}, {Addr: 12}, {Addr: 13}})
	b := Slice([]Access{{Addr: 20}, {Addr: 21}})
	s := Interleave(2, a, b)
	var got []Access
	for {
		x, ok := s.Next()
		if !ok {
			break
		}
		got = append(got, x)
	}
	if len(got) != 6 {
		t.Fatalf("merged %d accesses, want 6", len(got))
	}
	// Chunk 2: a,a,b,b,a,a; thread tags follow the source stream index.
	wantAddr := []mem.VirtAddr{10, 11, 20, 21, 12, 13}
	wantThr := []int{0, 0, 1, 1, 0, 0}
	for i := range got {
		if got[i].Addr != wantAddr[i] || got[i].Thread != wantThr[i] {
			t.Errorf("pos %d = %+v, want addr=%d thr=%d", i, got[i], wantAddr[i], wantThr[i])
		}
	}
}

func TestInterleaveConservesAccesses(t *testing.T) {
	f := func(la, lb, lc uint8, chunk uint8) bool {
		mk := func(n uint8) Stream {
			var acc []Access
			for i := 0; i < int(n); i++ {
				acc = append(acc, Access{Addr: mem.VirtAddr(i)})
			}
			return Slice(acc)
		}
		s := Interleave(int(chunk%8)+1, mk(la), mk(lb), mk(lc))
		return Count(s) == uint64(la)+uint64(lb)+uint64(lc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSequentialWrapsAround(t *testing.T) {
	s := Sequential(0x1000, 32, 8, 8)
	got := addrs(s)
	want := []mem.VirtAddr{0x1000, 0x1008, 0x1010, 0x1018, 0x1000, 0x1008, 0x1010, 0x1018}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("pos %d = %#x, want %#x", i, uint64(got[i]), uint64(want[i]))
		}
	}
}

func TestUniformRandomStaysInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := mem.VirtAddr(0x4000_0000)
	size := uint64(1 << 20)
	for _, a := range addrs(UniformRandom(base, size, 1000, rng)) {
		if a < base || a >= base+mem.VirtAddr(size) {
			t.Fatalf("address %#x out of range", uint64(a))
		}
	}
}

func TestZipfSkewAndRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	base := mem.VirtAddr(0x1000_0000)
	size := uint64(8 << 20)
	counts := map[mem.VirtAddr]int{}
	n := 20000
	for _, a := range addrs(Zipf(base, size, 1.3, uint64(n), rng)) {
		if a < base || a >= base+mem.VirtAddr(size) {
			t.Fatalf("address %#x out of range", uint64(a))
		}
		counts[a]++
	}
	// Skew: the most popular element must far exceed the mean.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	mean := float64(n) / float64(len(counts))
	if float64(max) < 5*mean {
		t.Errorf("zipf skew too weak: max=%d mean=%.1f uniq=%d", max, mean, len(counts))
	}
}

func TestZipfClampsExponent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// s <= 1 must not panic (clamped internally).
	if n := Count(Zipf(0, 1<<20, 0.5, 100, rng)); n != 100 {
		t.Errorf("count = %d", n)
	}
}

func TestHotColdConcentration(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	base := mem.VirtAddr(0)
	size := uint64(64 << 20)
	hot := uint64(1 << 20)
	inHot := 0
	total := 10000
	for _, a := range addrs(HotCold(base, size, hot, 0.9, uint64(total), rng)) {
		if uint64(a) < hot {
			inHot++
		}
	}
	// 90% directed + ~1.5% of uniform falls in hot range.
	if frac := float64(inHot) / float64(total); frac < 0.85 || frac > 0.95 {
		t.Errorf("hot fraction = %.3f, want ~0.9", frac)
	}
}

func TestHotColdClampsHotBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// hotBytes > size must clamp, not panic or escape the range.
	for _, a := range addrs(HotCold(0, 1<<20, 1<<30, 0.5, 100, rng)) {
		if uint64(a) >= 1<<20 {
			t.Fatalf("escaped range: %#x", uint64(a))
		}
	}
}

func TestPointerChaseVisitsAllNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	size := uint64(64 * 16) // 16 cacheline nodes
	seen := map[mem.VirtAddr]bool{}
	for _, a := range addrs(PointerChase(0, size, 16, rng)) {
		if uint64(a)%64 != 0 || uint64(a) >= size {
			t.Fatalf("bad node address %#x", uint64(a))
		}
		seen[a] = true
	}
	// rand.Perm does not guarantee one cycle, but repeated following from
	// node 0 for 16 steps must stay in range and visit >1 node.
	if len(seen) < 2 {
		t.Errorf("chase visited %d nodes", len(seen))
	}
}

func TestMixRespectsWeightsAndEnds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := Sequential(0, 1<<20, 64, 900)
	b := Sequential(1<<30, 1<<20, 64, 100)
	s := Mix(rng, []float64{0.9, 0.1}, a, b)
	fromA, fromB := 0, 0
	for {
		x, ok := s.Next()
		if !ok {
			break
		}
		if uint64(x.Addr) < 1<<30 {
			fromA++
		} else {
			fromB++
		}
	}
	if fromA != 900 || fromB != 100 {
		t.Errorf("drained %d/%d, want 900/100", fromA, fromB)
	}
}

func TestMixValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched weights must panic")
		}
	}()
	Mix(rand.New(rand.NewSource(1)), []float64{1}, Slice(nil), Slice(nil))
}

func TestCollectBounded(t *testing.T) {
	s := Sequential(0, 1<<20, 8, 1000)
	got := Collect(s, 10)
	if len(got) != 10 {
		t.Errorf("collected %d", len(got))
	}
}

func TestPhased(t *testing.T) {
	s := Phased(
		Sequential(0, 1<<12, 8, 5),
		Sequential(1<<30, 1<<12, 8, 5),
	)
	got := addrs(s)
	if len(got) != 10 {
		t.Fatalf("len = %d", len(got))
	}
	if uint64(got[4]) >= 1<<30 || uint64(got[5]) < 1<<30 {
		t.Error("phases must be ordered")
	}
}
