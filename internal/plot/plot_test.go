package plot

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pccsim/internal/metrics"
)

func sampleChart() LineChart {
	return CurveChart("BFS utility",
		metrics.Curve{Name: "PCC", Points: []metrics.CurvePoint{
			{BudgetPct: 0, Speedup: 1.0},
			{BudgetPct: 4, Speedup: 1.17},
			{BudgetPct: 100, Speedup: 1.39},
		}},
		metrics.Curve{Name: "HawkEye", Points: []metrics.CurvePoint{
			{BudgetPct: 0, Speedup: 1.0},
			{BudgetPct: 4, Speedup: 1.0},
			{BudgetPct: 100, Speedup: 1.32},
		}},
	)
}

func TestLineChartSVGStructure(t *testing.T) {
	c := sampleChart()
	c.Refs = append(c.Refs, HLine{Name: "ideal", Y: 1.49})
	svg := c.SVG()
	for _, want := range []string{
		"<svg", "</svg>", "polyline", "BFS utility", "PCC", "HawkEye",
		"ideal", "speedup", "huge budget",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Two polylines (one per series).
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Errorf("polylines = %d, want 2", got)
	}
	// The ideal reference renders as a dashed line.
	if !strings.Contains(svg, "stroke-dasharray") {
		t.Error("reference line must be dashed")
	}
}

func TestLineChartMonotoneXMapping(t *testing.T) {
	c := sampleChart()
	sc := c.fitScale()
	if sc.x(0) >= sc.x(4) || sc.x(4) >= sc.x(100) {
		t.Error("x mapping must be monotone")
	}
	if sc.y(1.0) <= sc.y(1.39) {
		t.Error("y mapping must invert (larger value higher on screen)")
	}
	// All points inside the plot area.
	for _, l := range c.Lines {
		for i := range l.X {
			px, py := sc.x(l.X[i]), sc.y(l.Y[i])
			if px < marginL-1 || px > width-marginR+1 || py < marginT-1 || py > height-marginB+1 {
				t.Errorf("point (%v,%v) maps outside plot area: (%v,%v)", l.X[i], l.Y[i], px, py)
			}
		}
	}
}

func TestEmptyChartDoesNotPanic(t *testing.T) {
	c := LineChart{Title: "empty"}
	if !strings.Contains(c.SVG(), "<svg") {
		t.Error("empty chart must still render a document")
	}
}

func TestEscape(t *testing.T) {
	c := LineChart{Title: `a<b & c>d`}
	svg := c.SVG()
	if strings.Contains(svg, "a<b") {
		t.Error("title must be escaped")
	}
	if !strings.Contains(svg, "a&lt;b &amp; c&gt;d") {
		t.Error("escaped title missing")
	}
}

func TestBarChartSVG(t *testing.T) {
	c := BarChart{
		Title:  "Fig 7",
		YLabel: "speedup",
		Series: []string{"HawkEye", "Linux", "PCC"},
		Groups: []BarGroup{
			{Label: "BFS", Values: []float64{1.31, 0.98, 1.38}},
			{Label: "SSSP", Values: []float64{1.25, 0.99, 1.33}},
		},
	}
	svg := c.SVG()
	if got := strings.Count(svg, "<rect"); got < 7 { // background + 6 bars + legend swatches
		t.Errorf("rect count = %d", got)
	}
	for _, want := range []string{"BFS", "SSSP", "HawkEye", "Linux", "PCC"} {
		if !strings.Contains(svg, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestSave(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "figs")
	path, err := Save(dir, "fig5_bfs", sampleChart().SVG())
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Error("saved file must start with <svg")
	}
}

func TestTrimNum(t *testing.T) {
	if trimNum(4) != "4" || trimNum(0.5) != "0.5" {
		t.Errorf("trimNum: %q %q", trimNum(4), trimNum(0.5))
	}
}

func TestScatterChartSVG(t *testing.T) {
	c := ScatterChart{
		Title:     "Fig 2",
		XLabel:    "4KB reuse",
		YLabel:    "2MB reuse",
		Threshold: 1024,
		Classes: []ScatterClass{
			{Name: "TLB-friendly", X: []float64{10, 100}, Y: []float64{5, 40}},
			{Name: "HUB", X: []float64{5000, 90000}, Y: []float64{30, 200}},
			{Name: "low-reuse", X: []float64{80000}, Y: []float64{70000}},
		},
	}
	svg := c.SVG()
	if got := strings.Count(svg, "<circle"); got < 5+3 { // points + legend dots
		t.Errorf("circle count = %d", got)
	}
	for _, want := range []string{"TLB-friendly", "HUB", "low-reuse", "1e3", "stroke-dasharray"} {
		if !strings.Contains(svg, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestScatterChartEmpty(t *testing.T) {
	c := ScatterChart{Title: "empty"}
	if !strings.Contains(c.SVG(), "<svg") {
		t.Error("empty scatter must render")
	}
}
