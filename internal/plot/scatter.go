package plot

import (
	"fmt"
	"math"
	"strings"
)

// ScatterClass is one class of points sharing a color (Fig. 2's
// TLB-friendly / HUB / low-reuse taxonomy).
type ScatterClass struct {
	Name string
	X    []float64
	Y    []float64
}

// ScatterChart renders classified points on log-log axes, matching the
// paper's Fig. 2 presentation (4KB page reuse distance vs 2MB region reuse
// distance).
type ScatterChart struct {
	Title     string
	XLabel    string
	YLabel    string
	Classes   []ScatterClass
	Threshold float64 // classification boundary drawn on both axes
}

// SVG renders the scatter chart.
func (c ScatterChart) SVG() string {
	var b strings.Builder
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, cl := range c.Classes {
		for i := range cl.X {
			minV = math.Min(minV, math.Max(cl.X[i], 1))
			maxV = math.Max(maxV, cl.X[i])
			minV = math.Min(minV, math.Max(cl.Y[i], 1))
			maxV = math.Max(maxV, cl.Y[i])
		}
	}
	if math.IsInf(minV, 1) {
		minV, maxV = 1, 10
	}
	if minV < 1 {
		minV = 1
	}
	lmin, lmax := math.Log10(minV), math.Log10(maxV)
	if lmax == lmin {
		lmax = lmin + 1
	}
	px := func(v float64) float64 {
		if v < 1 {
			v = 1
		}
		return marginL + (math.Log10(v)-lmin)/(lmax-lmin)*(width-marginL-marginR)
	}
	py := func(v float64) float64 {
		if v < 1 {
			v = 1
		}
		return float64(height-marginB) - (math.Log10(v)-lmin)/(lmax-lmin)*float64(height-marginT-marginB)
	}

	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-size="15" font-weight="bold">%s</text>`, marginL, escape(c.Title))
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`,
		marginL, height-marginB, width-marginR, height-marginB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`,
		marginL, marginT, marginL, height-marginB)

	// Decade ticks.
	for d := math.Ceil(lmin); d <= lmax; d++ {
		v := math.Pow(10, d)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="10" text-anchor="middle">1e%.0f</text>`,
			px(v), height-marginB+16, d)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="10" text-anchor="end">1e%.0f</text>`,
			marginL-6, py(v)+3, d)
	}

	// Threshold guides.
	if c.Threshold > 0 {
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#888888" stroke-dasharray="5,5"/>`,
			px(c.Threshold), marginT, px(c.Threshold), height-marginB)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#888888" stroke-dasharray="5,5"/>`,
			marginL, py(c.Threshold), width-marginR, py(c.Threshold))
	}

	for i, cl := range c.Classes {
		color := palette[(i+2)%len(palette)] // green/HUB-blue/vermillion-ish spread
		for j := range cl.X {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.2" fill="%s" fill-opacity="0.55"/>`,
				px(cl.X[j]), py(cl.Y[j]), color)
		}
	}

	// Legend.
	lx, ly := width-marginR-170, marginT+10
	for i, cl := range c.Classes {
		color := palette[(i+2)%len(palette)]
		fmt.Fprintf(&b, `<circle cx="%d" cy="%d" r="4" fill="%s"/>`, lx, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11">%s</text>`, lx+10, ly+4, escape(cl.Name))
		ly += 16
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12" text-anchor="middle">%s</text>`,
		(marginL+width-marginR)/2, height-10, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%d" font-size="12" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`,
		(marginT+height-marginB)/2, (marginT+height-marginB)/2, escape(c.YLabel))
	b.WriteString(`</svg>`)
	return b.String()
}
