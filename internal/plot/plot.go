// Package plot renders the experiment harness's utility curves and bar
// groups as standalone SVG files using only the standard library, so
// `pccsim -plots <dir>` can regenerate the paper's figures as images, not
// just tables.
package plot

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"pccsim/internal/metrics"
)

// palette holds the series colors (colorblind-safe Okabe-Ito subset).
var palette = []string{
	"#0072B2", // blue
	"#D55E00", // vermillion
	"#009E73", // green
	"#CC79A7", // purple
	"#E69F00", // orange
	"#56B4E9", // sky
	"#000000", // black
}

const (
	width   = 640
	height  = 400
	marginL = 64
	marginR = 24
	marginT = 40
	marginB = 48
)

// Line is one series of a line chart.
type Line struct {
	Name string
	X    []float64
	Y    []float64
	// Dashed renders the series as a dashed reference line.
	Dashed bool
}

// HLine is a horizontal reference line (e.g. the all-THP ideal).
type HLine struct {
	Name string
	Y    float64
}

// LineChart describes one figure.
type LineChart struct {
	Title  string
	XLabel string
	YLabel string
	Lines  []Line
	Refs   []HLine
	// LogX uses a log2 x-axis (utility curves sweep power-of-two budgets).
	LogX bool
}

// CurveChart builds a LineChart from metrics curves (speedup vs budget).
func CurveChart(title string, curves ...metrics.Curve) LineChart {
	c := LineChart{Title: title, XLabel: "huge budget (% of footprint)", YLabel: "speedup", LogX: true}
	for _, cv := range curves {
		l := Line{Name: cv.Name}
		for _, p := range cv.Points {
			l.X = append(l.X, p.BudgetPct)
			l.Y = append(l.Y, p.Speedup)
		}
		c.Lines = append(c.Lines, l)
	}
	return c
}

type scale struct {
	minX, maxX, minY, maxY float64
	logX                   bool
}

func (s scale) x(v float64) float64 {
	min, max, val := s.minX, s.maxX, v
	if s.logX {
		min, max, val = log2p1(min), log2p1(max), log2p1(v)
	}
	if max == min {
		return marginL
	}
	return marginL + (val-min)/(max-min)*(width-marginL-marginR)
}

func (s scale) y(v float64) float64 {
	if s.maxY == s.minY {
		return height - marginB
	}
	return float64(height-marginB) - (v-s.minY)/(s.maxY-s.minY)*float64(height-marginT-marginB)
}

// log2p1 maps budget percentages (which include 0) onto a log-ish axis.
func log2p1(v float64) float64 { return math.Log2(v + 1) }

// SVG renders the chart.
func (c LineChart) SVG() string {
	var b strings.Builder
	sc := c.fitScale()

	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-size="15" font-weight="bold">%s</text>`, marginL, escape(c.Title))

	c.axes(&b, sc)

	for i, l := range c.Lines {
		color := palette[i%len(palette)]
		dash := ""
		if l.Dashed {
			dash = ` stroke-dasharray="6,4"`
		}
		var pts []string
		for j := range l.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", sc.x(l.X[j]), sc.y(l.Y[j])))
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="2"%s points="%s"/>`,
			color, dash, strings.Join(pts, " "))
		for j := range l.X {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`,
				sc.x(l.X[j]), sc.y(l.Y[j]), color)
		}
	}
	for i, r := range c.Refs {
		color := palette[(len(c.Lines)+i)%len(palette)]
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="%s" stroke-width="1.5" stroke-dasharray="4,4"/>`,
			marginL, sc.y(r.Y), width-marginR, sc.y(r.Y), color)
	}
	c.legend(&b)
	b.WriteString(`</svg>`)
	return b.String()
}

func (c LineChart) fitScale() scale {
	sc := scale{minX: math.Inf(1), maxX: math.Inf(-1), minY: math.Inf(1), maxY: math.Inf(-1), logX: c.LogX}
	for _, l := range c.Lines {
		for i := range l.X {
			sc.minX = math.Min(sc.minX, l.X[i])
			sc.maxX = math.Max(sc.maxX, l.X[i])
			sc.minY = math.Min(sc.minY, l.Y[i])
			sc.maxY = math.Max(sc.maxY, l.Y[i])
		}
	}
	for _, r := range c.Refs {
		sc.minY = math.Min(sc.minY, r.Y)
		sc.maxY = math.Max(sc.maxY, r.Y)
	}
	if math.IsInf(sc.minX, 1) {
		sc.minX, sc.maxX, sc.minY, sc.maxY = 0, 1, 0, 1
	}
	// Pad Y range 5%.
	pad := (sc.maxY - sc.minY) * 0.05
	if pad == 0 {
		pad = 0.05
	}
	sc.minY -= pad
	sc.maxY += pad
	return sc
}

func (c LineChart) axes(b *strings.Builder, sc scale) {
	// Frame.
	fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`,
		marginL, height-marginB, width-marginR, height-marginB)
	fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`,
		marginL, marginT, marginL, height-marginB)

	// X ticks at the data points of the first line (budget sweep).
	ticks := map[float64]bool{}
	for _, l := range c.Lines {
		for _, x := range l.X {
			ticks[x] = true
		}
	}
	var xs []float64
	for x := range ticks {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	for _, x := range xs {
		px := sc.x(x)
		fmt.Fprintf(b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`,
			px, height-marginB, px, height-marginB+5)
		fmt.Fprintf(b, `<text x="%.1f" y="%d" font-size="11" text-anchor="middle">%s</text>`,
			px, height-marginB+18, trimNum(x))
	}
	// Y ticks: 5 evenly spaced.
	for i := 0; i <= 4; i++ {
		v := sc.minY + (sc.maxY-sc.minY)*float64(i)/4
		py := sc.y(v)
		fmt.Fprintf(b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`,
			marginL-5, py, marginL, py)
		fmt.Fprintf(b, `<text x="%d" y="%.1f" font-size="11" text-anchor="end">%.2f</text>`,
			marginL-8, py+4, v)
		fmt.Fprintf(b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#dddddd"/>`,
			marginL, py, width-marginR, py)
	}
	fmt.Fprintf(b, `<text x="%d" y="%d" font-size="12" text-anchor="middle">%s</text>`,
		(marginL+width-marginR)/2, height-12, escape(c.XLabel))
	fmt.Fprintf(b, `<text x="16" y="%d" font-size="12" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`,
		(marginT+height-marginB)/2, (marginT+height-marginB)/2, escape(c.YLabel))
}

func (c LineChart) legend(b *strings.Builder) {
	y := marginT + 8
	x := width - marginR - 190
	for i, l := range c.Lines {
		color := palette[i%len(palette)]
		fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`,
			x, y, x+22, y, color)
		fmt.Fprintf(b, `<text x="%d" y="%d" font-size="11">%s</text>`, x+28, y+4, escape(l.Name))
		y += 16
	}
	for i, r := range c.Refs {
		color := palette[(len(c.Lines)+i)%len(palette)]
		fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="1.5" stroke-dasharray="4,4"/>`,
			x, y, x+22, y, color)
		fmt.Fprintf(b, `<text x="%d" y="%d" font-size="11">%s</text>`, x+28, y+4, escape(r.Name))
		y += 16
	}
}

// BarGroup is one labeled cluster of bars (e.g. one application).
type BarGroup struct {
	Label  string
	Values []float64
}

// BarChart describes a grouped bar figure (Fig. 1 / Fig. 7 style).
type BarChart struct {
	Title  string
	YLabel string
	Series []string // one per bar within a group
	Groups []BarGroup
}

// SVG renders the bar chart.
func (c BarChart) SVG() string {
	var b strings.Builder
	maxY := 0.0
	for _, g := range c.Groups {
		for _, v := range g.Values {
			maxY = math.Max(maxY, v)
		}
	}
	if maxY == 0 {
		maxY = 1
	}
	maxY *= 1.1
	y := func(v float64) float64 {
		return float64(height-marginB) - v/maxY*float64(height-marginT-marginB)
	}

	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-size="15" font-weight="bold">%s</text>`, marginL, escape(c.Title))
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`,
		marginL, height-marginB, width-marginR, height-marginB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`,
		marginL, marginT, marginL, height-marginB)

	// Y ticks.
	for i := 0; i <= 4; i++ {
		v := maxY * float64(i) / 4
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="11" text-anchor="end">%.2f</text>`,
			marginL-8, y(v)+4, v)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#dddddd"/>`,
			marginL, y(v), width-marginR, y(v))
	}
	fmt.Fprintf(&b, `<text x="16" y="%d" font-size="12" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`,
		(marginT+height-marginB)/2, (marginT+height-marginB)/2, escape(c.YLabel))

	plotW := float64(width - marginL - marginR)
	groupW := plotW / float64(len(c.Groups))
	barW := groupW * 0.8 / float64(maxInt(len(c.Series), 1))
	for gi, g := range c.Groups {
		gx := float64(marginL) + groupW*float64(gi) + groupW*0.1
		for vi, v := range g.Values {
			color := palette[vi%len(palette)]
			bx := gx + barW*float64(vi)
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`,
				bx, y(v), barW-1, float64(height-marginB)-y(v), color)
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="11" text-anchor="middle">%s</text>`,
			gx+groupW*0.4, height-marginB+18, escape(g.Label))
	}
	// Legend.
	lx, ly := width-marginR-170, marginT+8
	for i, s := range c.Series {
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="12" height="12" fill="%s"/>`,
			lx, ly-9, palette[i%len(palette)])
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11">%s</text>`, lx+18, ly+2, escape(s))
		ly += 16
	}
	b.WriteString(`</svg>`)
	return b.String()
}

// Save writes an SVG document to dir/name.svg, creating dir if needed.
func Save(dir, name, svg string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("plot: %w", err)
	}
	path := filepath.Join(dir, name+".svg")
	if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
		return "", fmt.Errorf("plot: %w", err)
	}
	return path, nil
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

func trimNum(v float64) string {
	if v == math.Trunc(v) {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%g", v)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
