// Package graph provides the compressed-sparse-row graph substrate the GAP
// workloads run on: deterministic Kronecker (R-MAT) generation for the
// synthetic power-law network, social- and web-like generators standing in
// for the Twitter and Sd1 Web datasets the paper evaluates (the real crawls
// are multi-GB downloads unavailable offline), and degree-based grouping
// (DBG) reordering, whose sorted/unsorted variants the paper averages over.
package graph

import (
	"fmt"
	"math/rand"
	"sort"
)

// CSR is a directed graph in compressed sparse row form. OutIndex has N+1
// entries; the out-neighbors of u are OutNeighbors[OutIndex[u]:OutIndex[u+1]].
// An inverse (in-edge) view is kept for pull-style algorithms (PageRank).
type CSR struct {
	N           int
	OutIndex    []uint64
	OutNeighbor []uint32
	InIndex     []uint64
	InNeighbor  []uint32
}

// NumEdges returns the directed edge count.
func (g *CSR) NumEdges() uint64 { return uint64(len(g.OutNeighbor)) }

// OutDegree returns the out-degree of u.
func (g *CSR) OutDegree(u uint32) uint64 {
	return g.OutIndex[u+1] - g.OutIndex[u]
}

// InDegree returns the in-degree of u.
func (g *CSR) InDegree(u uint32) uint64 {
	return g.InIndex[u+1] - g.InIndex[u]
}

// Out returns the out-neighbor slice of u (shared storage; do not mutate).
func (g *CSR) Out(u uint32) []uint32 {
	return g.OutNeighbor[g.OutIndex[u]:g.OutIndex[u+1]]
}

// In returns the in-neighbor slice of u (shared storage; do not mutate).
func (g *CSR) In(u uint32) []uint32 {
	return g.InNeighbor[g.InIndex[u]:g.InIndex[u+1]]
}

func (g *CSR) String() string {
	return fmt.Sprintf("CSR{N=%d, M=%d}", g.N, g.NumEdges())
}

// Edge is one directed edge used during construction.
type Edge struct{ Src, Dst uint32 }

// FromEdges builds a CSR (with both directions indexed) from an edge list.
// Duplicate edges are kept (they model multi-edges' extra accesses, which is
// harmless) but self-loops are dropped.
func FromEdges(n int, edges []Edge) *CSR {
	g := &CSR{N: n}
	outDeg := make([]uint64, n+1)
	inDeg := make([]uint64, n+1)
	kept := 0
	for _, e := range edges {
		if e.Src == e.Dst || int(e.Src) >= n || int(e.Dst) >= n {
			continue
		}
		outDeg[e.Src+1]++
		inDeg[e.Dst+1]++
		kept++
	}
	for i := 0; i < n; i++ {
		outDeg[i+1] += outDeg[i]
		inDeg[i+1] += inDeg[i]
	}
	g.OutIndex = outDeg
	g.InIndex = inDeg
	g.OutNeighbor = make([]uint32, kept)
	g.InNeighbor = make([]uint32, kept)
	outPos := make([]uint64, n)
	inPos := make([]uint64, n)
	for _, e := range edges {
		if e.Src == e.Dst || int(e.Src) >= n || int(e.Dst) >= n {
			continue
		}
		g.OutNeighbor[g.OutIndex[e.Src]+outPos[e.Src]] = e.Dst
		outPos[e.Src]++
		g.InNeighbor[g.InIndex[e.Dst]+inPos[e.Dst]] = e.Src
		inPos[e.Dst]++
	}
	// Sort adjacency lists for deterministic traversal order.
	for u := 0; u < n; u++ {
		out := g.Out(uint32(u))
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		in := g.In(uint32(u))
		sort.Slice(in, func(i, j int) bool { return in[i] < in[j] })
	}
	return g
}

// Kronecker generates an R-MAT / Kronecker graph with 2^scale vertices and
// edgeFactor*2^scale directed edges using the standard GAP/Graph500
// parameters (A=0.57, B=0.19, C=0.19), producing the heavy power-law degree
// skew the paper's Kronecker-25 input has. Deterministic per seed.
func Kronecker(scale int, edgeFactor int, seed int64) *CSR {
	if scale < 1 || scale > 30 {
		panic(fmt.Sprintf("graph: kronecker scale %d out of range", scale))
	}
	rng := rand.New(rand.NewSource(seed))
	n := 1 << scale
	m := edgeFactor * n
	edges := make([]Edge, 0, m)
	const a, b, c = 0.57, 0.19, 0.19
	for i := 0; i < m; i++ {
		var src, dst uint32
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < a:
				// upper-left: neither bit set
			case r < a+b:
				dst |= 1 << bit
			case r < a+b+c:
				src |= 1 << bit
			default:
				src |= 1 << bit
				dst |= 1 << bit
			}
		}
		edges = append(edges, Edge{Src: src, Dst: dst})
	}
	// GAP permutes vertex IDs so that degree does not correlate with ID.
	perm := rng.Perm(n)
	for i := range edges {
		edges[i].Src = uint32(perm[edges[i].Src])
		edges[i].Dst = uint32(perm[edges[i].Dst])
	}
	return FromEdges(n, edges)
}

// SocialNetwork generates a Twitter-like directed social graph: preferential
// attachment producing a few ultra-high-in-degree "celebrity" vertices and a
// long tail, with vertex IDs randomized. Deterministic per seed.
func SocialNetwork(n int, avgDeg int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	m := n * avgDeg
	edges := make([]Edge, 0, m)
	// Repeated-endpoint preferential attachment (Molloy-Reed style): pick
	// the destination by sampling a previous edge's destination with
	// probability p, a uniform vertex otherwise.
	const p = 0.75
	dsts := make([]uint32, 0, m)
	for i := 0; i < m; i++ {
		src := uint32(rng.Intn(n))
		var dst uint32
		if len(dsts) > 0 && rng.Float64() < p {
			dst = dsts[rng.Intn(len(dsts))]
		} else {
			dst = uint32(rng.Intn(n))
		}
		edges = append(edges, Edge{Src: src, Dst: dst})
		dsts = append(dsts, dst)
	}
	return FromEdges(n, edges)
}

// WebGraph generates an Sd1-web-like graph: strong host-level community
// structure (most links stay within a "site" block of contiguous IDs) plus
// long-range hub links. Deterministic per seed.
func WebGraph(n int, avgDeg int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	m := n * avgDeg
	site := 256 // pages per simulated site
	if n < site*2 {
		site = n / 2
	}
	edges := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		src := uint32(rng.Intn(n))
		var dst uint32
		if rng.Float64() < 0.8 {
			// Intra-site link.
			base := (int(src) / site) * site
			dst = uint32(base + rng.Intn(site))
		} else {
			// Cross-site link, biased to low-ID hub pages.
			hub := int(float64(n) * rng.Float64() * rng.Float64())
			dst = uint32(hub)
		}
		edges = append(edges, Edge{Src: src, Dst: dst})
	}
	return FromEdges(n, edges)
}

// DegreeBasedGrouping reorders vertex IDs so that vertices with similar
// (high) degree are grouped together — the DBG preprocessing (Faldu et al.)
// the paper's "sorted" datasets use, which coalesces hot vertex data onto
// the same pages. It returns a new graph plus the mapping old->new.
func DegreeBasedGrouping(g *CSR) (*CSR, []uint32) {
	type vd struct {
		v   uint32
		deg uint64
	}
	vs := make([]vd, g.N)
	for u := 0; u < g.N; u++ {
		vs[u] = vd{v: uint32(u), deg: g.OutDegree(uint32(u)) + g.InDegree(uint32(u))}
	}
	// Stable sort by descending degree groups hot vertices at low IDs.
	sort.SliceStable(vs, func(i, j int) bool { return vs[i].deg > vs[j].deg })
	remap := make([]uint32, g.N)
	for newID, e := range vs {
		remap[e.v] = uint32(newID)
	}
	edges := make([]Edge, 0, g.NumEdges())
	for u := 0; u < g.N; u++ {
		for _, v := range g.Out(uint32(u)) {
			edges = append(edges, Edge{Src: remap[u], Dst: remap[v]})
		}
	}
	return FromEdges(g.N, edges), remap
}

// MaxDegreeVertex returns the vertex with the highest out-degree; BFS/SSSP
// start there so traversals reach most of the graph deterministically.
func (g *CSR) MaxDegreeVertex() uint32 {
	best := uint32(0)
	var bestDeg uint64
	for u := 0; u < g.N; u++ {
		if d := g.OutDegree(uint32(u)); d > bestDeg {
			bestDeg = d
			best = uint32(u)
		}
	}
	return best
}
