package graph

import (
	"testing"
	"testing/quick"
)

func TestFromEdgesBasic(t *testing.T) {
	g := FromEdges(4, []Edge{
		{0, 1}, {0, 2}, {1, 2}, {3, 0},
	})
	if g.N != 4 || g.NumEdges() != 4 {
		t.Fatalf("N=%d M=%d", g.N, g.NumEdges())
	}
	if g.OutDegree(0) != 2 || g.InDegree(2) != 2 {
		t.Errorf("degrees wrong: out0=%d in2=%d", g.OutDegree(0), g.InDegree(2))
	}
	out := g.Out(0)
	if len(out) != 2 || out[0] != 1 || out[1] != 2 {
		t.Errorf("Out(0) = %v", out)
	}
	in := g.In(0)
	if len(in) != 1 || in[0] != 3 {
		t.Errorf("In(0) = %v", in)
	}
}

func TestFromEdgesDropsSelfLoopsAndOutOfRange(t *testing.T) {
	g := FromEdges(3, []Edge{
		{0, 0},  // self loop
		{0, 1},  // kept
		{5, 1},  // out of range src
		{1, 17}, // out of range dst
	})
	if g.NumEdges() != 1 {
		t.Errorf("M = %d, want 1", g.NumEdges())
	}
}

func TestFromEdgesAdjacencySorted(t *testing.T) {
	g := FromEdges(5, []Edge{{0, 4}, {0, 1}, {0, 3}, {0, 2}})
	out := g.Out(0)
	for i := 1; i < len(out); i++ {
		if out[i] < out[i-1] {
			t.Fatalf("adjacency not sorted: %v", out)
		}
	}
}

func TestInOutConsistencyProperty(t *testing.T) {
	// Property: sum of out-degrees == sum of in-degrees == edge count,
	// and every out-edge appears as an in-edge.
	f := func(seed int64) bool {
		g := Kronecker(8, 4, seed)
		var outSum, inSum uint64
		for u := 0; u < g.N; u++ {
			outSum += g.OutDegree(uint32(u))
			inSum += g.InDegree(uint32(u))
		}
		if outSum != inSum || outSum != g.NumEdges() {
			return false
		}
		// Spot-check reverse edges for vertex 0's out list.
		for _, v := range g.Out(0) {
			found := false
			for _, u := range g.In(v) {
				if u == 0 {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestKroneckerDeterministic(t *testing.T) {
	a := Kronecker(10, 8, 42)
	b := Kronecker(10, 8, 42)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed must give same graph")
	}
	for u := 0; u < a.N; u += 100 {
		ao, bo := a.Out(uint32(u)), b.Out(uint32(u))
		if len(ao) != len(bo) {
			t.Fatalf("degree mismatch at %d", u)
		}
		for i := range ao {
			if ao[i] != bo[i] {
				t.Fatalf("adjacency mismatch at %d", u)
			}
		}
	}
	c := Kronecker(10, 8, 43)
	if c.NumEdges() == a.NumEdges() {
		// Edge count can coincide; check adjacency differs somewhere.
		same := true
		for u := 0; u < a.N && same; u++ {
			ao, co := a.Out(uint32(u)), c.Out(uint32(u))
			if len(ao) != len(co) {
				same = false
				break
			}
			for i := range ao {
				if ao[i] != co[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Error("different seeds produced identical graphs")
		}
	}
}

func TestKroneckerPowerLawSkew(t *testing.T) {
	g := Kronecker(12, 16, 1)
	maxDeg := uint64(0)
	var sum uint64
	for u := 0; u < g.N; u++ {
		d := g.OutDegree(uint32(u))
		sum += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	mean := float64(sum) / float64(g.N)
	if float64(maxDeg) < 20*mean {
		t.Errorf("kronecker skew too weak: max=%d mean=%.1f", maxDeg, mean)
	}
}

func TestKroneckerScaleValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad scale must panic")
		}
	}()
	Kronecker(0, 16, 1)
}

func TestSocialNetworkSkewAndSize(t *testing.T) {
	g := SocialNetwork(1<<12, 8, 7)
	if g.N != 1<<12 {
		t.Fatalf("N = %d", g.N)
	}
	if g.NumEdges() < uint64(g.N)*6 {
		t.Errorf("too few edges: %d", g.NumEdges())
	}
	maxIn := uint64(0)
	var sum uint64
	for u := 0; u < g.N; u++ {
		d := g.InDegree(uint32(u))
		sum += d
		if d > maxIn {
			maxIn = d
		}
	}
	mean := float64(sum) / float64(g.N)
	if float64(maxIn) < 10*mean {
		t.Errorf("social in-degree skew too weak: max=%d mean=%.1f", maxIn, mean)
	}
}

func TestWebGraphCommunityStructure(t *testing.T) {
	g := WebGraph(1<<12, 8, 7)
	// Most links should stay within the 256-vertex site block.
	intra, total := 0, 0
	for u := 0; u < g.N; u++ {
		for _, v := range g.Out(uint32(u)) {
			total++
			if int(u)/256 == int(v)/256 {
				intra++
			}
		}
	}
	if frac := float64(intra) / float64(total); frac < 0.6 {
		t.Errorf("intra-site fraction = %.2f, want >= 0.6", frac)
	}
}

func TestDegreeBasedGrouping(t *testing.T) {
	g := Kronecker(10, 8, 5)
	sorted, remap := DegreeBasedGrouping(g)
	if sorted.N != g.N || sorted.NumEdges() != g.NumEdges() {
		t.Fatalf("DBG changed graph size: %v vs %v", sorted, g)
	}
	if len(remap) != g.N {
		t.Fatalf("remap len = %d", len(remap))
	}
	// New IDs must be a permutation.
	seen := make([]bool, g.N)
	for _, nid := range remap {
		if seen[nid] {
			t.Fatal("remap is not a permutation")
		}
		seen[nid] = true
	}
	// Degrees must be non-increasing in new ID order (stable grouping).
	deg := func(gr *CSR, u int) uint64 {
		return gr.OutDegree(uint32(u)) + gr.InDegree(uint32(u))
	}
	for u := 1; u < sorted.N; u++ {
		if deg(sorted, u) > deg(sorted, u-1) {
			t.Fatalf("degree order violated at %d: %d > %d", u, deg(sorted, u), deg(sorted, u-1))
		}
	}
	// Degree multiset preserved: vertex remap[u] in sorted has u's degree.
	for u := 0; u < g.N; u += 37 {
		if deg(g, u) != deg(sorted, int(remap[u])) {
			t.Fatalf("degree not preserved for %d", u)
		}
	}
}

func TestMaxDegreeVertex(t *testing.T) {
	g := FromEdges(4, []Edge{{2, 0}, {2, 1}, {2, 3}, {0, 1}})
	if got := g.MaxDegreeVertex(); got != 2 {
		t.Errorf("max degree vertex = %d, want 2", got)
	}
}

func TestCSRString(t *testing.T) {
	g := FromEdges(2, []Edge{{0, 1}})
	if g.String() == "" {
		t.Error("must stringify")
	}
}
