// Custom policy: implement your own OS huge page promotion strategy against
// the vmm.Policy interface and compare it with the paper's PCC engine.
//
// The strategy here ("EagerTopOne") promotes exactly one region per
// interval — the single hottest PCC candidate — modelling an extremely
// conservative OS that minimizes promotion work. It demonstrates the whole
// extension surface a policy gets: fault-time page size decisions, periodic
// ticks, PCC dumps, and the machine's promotion/demotion verbs.
package main

import (
	"fmt"

	"pccsim/internal/mem"
	"pccsim/internal/ospolicy"
	"pccsim/internal/vmm"
	"pccsim/internal/workloads"
)

// eagerTopOne promotes the hottest candidate from core 0's PCC each tick.
type eagerTopOne struct {
	proc *vmm.Process
}

// Name identifies the policy in reports.
func (e *eagerTopOne) Name() string { return "EagerTopOne" }

// OnFault keeps fault-time allocation at base pages; all huge pages come
// from informed promotion, like the paper's design.
func (e *eagerTopOne) OnFault(*vmm.Machine, *vmm.Process, mem.VirtAddr) mem.PageSize {
	return mem.Page4K
}

// Tick reads the ranked candidate dump and promotes only the top entry.
func (e *eagerTopOne) Tick(m *vmm.Machine) {
	core := m.Core(0)
	if core.PCC2M == nil || e.proc == nil {
		return
	}
	for _, cand := range core.PCC2M.Dump() {
		if e.proc.IsHuge2M(cand.Region.Base) {
			continue
		}
		// Promote the hottest not-yet-huge region; stop after one.
		if err := m.Promote2M(e.proc, cand.Region.Base); err == nil {
			return
		}
	}
}

func main() {
	wl, err := workloads.Build(workloads.Spec{
		Name:    "BFS",
		Dataset: workloads.DatasetKron,
		Scale:   16,
		Sorted:  true,
	})
	if err != nil {
		panic(err)
	}

	fmt.Printf("%-20s %12s %8s %6s %s\n", "policy", "cycles", "PTW%", "huge", "speedup")
	base := simulate(wl, ospolicy.Baseline{}, false, nil)
	fmt.Printf("%-20s %12.0f %7.2f%% %6d %7s\n", "4KB", base.Cycles, 100*base.PTWRate, base.HugePages2M, "1.00x")

	custom := &eagerTopOne{}
	res := simulate(wl, custom, true, func(m *vmm.Machine, p *vmm.Process) { custom.proc = p })
	fmt.Printf("%-20s %12.0f %7.2f%% %6d %6.2fx\n", custom.Name(), res.Cycles, 100*res.PTWRate,
		res.HugePages2M, base.Cycles/res.Cycles)

	engine := ospolicy.NewPCCEngine(ospolicy.DefaultPCCEngineConfig())
	res = simulate(wl, engine, true, func(m *vmm.Machine, p *vmm.Process) { engine.Bind(0, p) })
	fmt.Printf("%-20s %12.0f %7.2f%% %6d %6.2fx\n", engine.Name(), res.Cycles, 100*res.PTWRate,
		res.HugePages2M, base.Cycles/res.Cycles)
}

// simulate runs wl under the policy on a fresh machine; bind (optional)
// lets the policy learn the process once it exists.
func simulate(wl workloads.Workload, policy vmm.Policy, enablePCC bool,
	bind func(*vmm.Machine, *vmm.Process)) vmm.RunResult {

	cfg := vmm.DefaultConfig()
	cfg.EnablePCC = enablePCC
	cfg.PromotionInterval = 400_000
	m := vmm.NewMachine(cfg, policy)
	p := m.AddProcess(wl.Name(), wl.Ranges(), wl.BaseCPA())
	if bind != nil {
		bind(m, p)
	}
	return m.Run(&vmm.Job{Proc: p, Stream: wl.Stream(), Cores: []int{0}})
}
