// Virtualized: run a TLB-hostile guest workload under nested translation
// (§5.4.3 of the paper) and compare four promotion strategies — none,
// guest-only, host-only, and the coordinated guest+hypercall scheme the
// paper prescribes. Only coordination lets the hardware cache 2MB combined
// translations; one-sided promotion merely shortens the nested walk.
package main

import (
	"fmt"
	"math/rand"

	"pccsim/internal/mem"
	"pccsim/internal/trace"
	"pccsim/internal/virt"
)

func main() {
	const regions = 48
	start := mem.VirtAddr(128) << 30
	vmas := []mem.Range{{Start: start, End: start + mem.VirtAddr(regions)<<21}}

	stream := func(seed int64, n uint64) trace.Stream {
		rng := rand.New(rand.NewSource(seed))
		return trace.Zipf(vmas[0].Start, vmas[0].Len(), 1.2, n, rng)
	}

	type variant struct {
		name    string
		promote func(m *virt.Machine, base mem.VirtAddr) error
	}
	variants := []variant{
		{"4KB everywhere", nil},
		{"guest 2MB only", func(m *virt.Machine, b mem.VirtAddr) error { return m.PromoteGuest2M(b) }},
		{"host 2MB only", func(m *virt.Machine, b mem.VirtAddr) error { return m.PromoteHost2M(b) }},
		{"coordinated", func(m *virt.Machine, b mem.VirtAddr) error { return m.PromoteBoth2M(b) }},
	}

	fmt.Printf("guest footprint: %s over nested 4-level/4-level translation\n\n",
		mem.HumanBytes(vmas[0].Len()))
	fmt.Printf("%-16s %12s %8s %10s\n", "strategy", "cycles", "PTW%", "refs/walk")

	var base float64
	for _, v := range variants {
		m := virt.NewMachine(virt.DefaultConfig(), vmas)
		m.Run(stream(1, 2_000_000)) // fault in + let the guest PCC rank
		if v.promote != nil {
			// The guest OS promotes what its PCC surfaced, then sweeps
			// the remainder (the unconstrained-budget case).
			for _, c := range m.GuestPCC().Dump() {
				_ = v.promote(m, c.Region.Base)
			}
			for b := vmas[0].Start; b < vmas[0].End; b += mem.VirtAddr(mem.Page2M) {
				_ = v.promote(m, b)
			}
		}
		m.Cycles, m.Accesses, m.Walks, m.NestedRefs = 0, 0, 0, 0
		m.Run(stream(2, 6_000_000))
		if base == 0 {
			base = m.Cycles
		}
		fmt.Printf("%-16s %12.0f %7.2f%% %10.1f   (%.2fx)\n",
			v.name, m.Cycles, 100*m.PTWRate(), m.RefsPerWalk(), base/m.Cycles)
	}
}
