// Multi-tenant study: two processes — TLB-sensitive PageRank and
// TLB-insensitive mcf — share one machine and a limited huge page budget
// (§5.3 of the paper). The OS merges candidates from both cores' PCCs
// either by highest frequency (biases the TLB-sensitive tenant) or
// round-robin (fair). The frequency policy wins when exactly one tenant is
// TLB-sensitive, because the other's PCC holds little of value.
package main

import (
	"fmt"

	"pccsim/internal/ospolicy"
	"pccsim/internal/vmm"
	"pccsim/internal/workloads"
)

func main() {
	prSpec := workloads.Spec{Name: "PR", Dataset: workloads.DatasetKron, Scale: 16, Sorted: true}
	mcfSpec := workloads.Spec{Name: "mcf", SizeScale: 0.25, Accesses: 6_000_000}

	fmt.Println("co-running PR (TLB-sensitive) and mcf (insensitive), shared huge budget")
	fmt.Printf("%-14s %-12s %10s %10s %8s %8s\n",
		"budget", "policy", "PR cycles", "mcf cycles", "PR #THP", "mcf #THP")

	// Baseline co-run for speedup reference.
	basePR, baseMcf, _, _ := corun(prSpec, mcfSpec, nil, 0)

	for _, budget := range []float64{5, 20, 100} {
		for _, sel := range []ospolicy.SelectionPolicy{ospolicy.HighestFrequency, ospolicy.RoundRobin} {
			pr, mcf, prTHP, mcfTHP := corun(prSpec, mcfSpec, &sel, budget)
			fmt.Printf("%-14s %-12s %9.3g %9.3g %8d %8d   (PR %.2fx, mcf %.2fx)\n",
				fmt.Sprintf("%.0f%% combined", budget), sel, pr, mcf, prTHP, mcfTHP,
				basePR/pr, baseMcf/mcf)
		}
	}
}

// corun simulates the two workloads on two cores; sel == nil means the 4KB
// baseline. Returns per-process runtimes and huge page counts.
func corun(a, b workloads.Spec, sel *ospolicy.SelectionPolicy, budgetPct float64) (float64, float64, int, int) {
	wa, err := workloads.Build(a)
	if err != nil {
		panic(err)
	}
	wb, err := workloads.Build(b)
	if err != nil {
		panic(err)
	}

	cfg := vmm.DefaultConfig()
	cfg.Cores = 2
	cfg.PromotionInterval = 500_000
	var policy vmm.Policy = ospolicy.Baseline{}
	var engine *ospolicy.PCCEngine
	if sel != nil {
		cfg.EnablePCC = true
		ec := ospolicy.DefaultPCCEngineConfig()
		ec.Selection = *sel
		engine = ospolicy.NewPCCEngine(ec)
		policy = engine
		if budgetPct > 0 && budgetPct < 100 {
			combined := float64(wa.Footprint() + wb.Footprint())
			cfg.MaxHugeBytesTotal = uint64(budgetPct / 100 * combined)
		}
	}

	m := vmm.NewMachine(cfg, policy)
	pa := m.AddProcess(wa.Name(), wa.Ranges(), wa.BaseCPA())
	pb := m.AddProcess(wb.Name(), wb.Ranges(), wb.BaseCPA())
	if engine != nil {
		engine.Bind(0, pa)
		engine.Bind(1, pb)
	}
	res := m.Run(
		&vmm.Job{Proc: pa, Stream: wa.Stream(), Cores: []int{0}},
		&vmm.Job{Proc: pb, Stream: wb.Stream(), Cores: []int{1}},
	)
	return res.PerProc[0].RuntimeCycles, res.PerProc[1].RuntimeCycles,
		res.PerProc[0].HugePages2M, res.PerProc[1].HugePages2M
}
