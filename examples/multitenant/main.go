// Multi-tenant study: two tenants — TLB-sensitive PageRank and
// TLB-insensitive mcf — share one machine and a limited huge page budget
// (§5.3 of the paper). Each tenant is registered through vmm.AddTenant with a
// HugeShare slice of the machine-wide budget. The OS merges candidates from
// both cores' PCCs either by highest frequency (biases the TLB-sensitive
// tenant) or round-robin (fair). The frequency policy wins when exactly one
// tenant is TLB-sensitive, because the other's PCC holds little of value.
// A final section reruns the shared-budget configuration with lifecycle
// churn enabled — short-lived processes spawning, exec'ing and exiting under
// the same budget — to show the noisy-neighbor interference figtenant sweeps.
package main

import (
	"fmt"

	"pccsim/internal/ospolicy"
	"pccsim/internal/vmm"
	"pccsim/internal/workloads"
)

func main() {
	prSpec := workloads.Spec{Name: "PR", Dataset: workloads.DatasetKron, Scale: 16, Sorted: true}
	mcfSpec := workloads.Spec{Name: "mcf", SizeScale: 0.25, Accesses: 6_000_000}

	fmt.Println("co-running PR (TLB-sensitive) and mcf (insensitive), shared huge budget")
	fmt.Printf("%-14s %-12s %10s %10s %8s %8s\n",
		"budget", "policy", "PR cycles", "mcf cycles", "PR #THP", "mcf #THP")

	// Baseline co-run for speedup reference.
	basePR, baseMcf, _, _ := corun(prSpec, mcfSpec, nil, 0, false)

	for _, budget := range []float64{5, 20, 100} {
		for _, sel := range []ospolicy.SelectionPolicy{ospolicy.HighestFrequency, ospolicy.RoundRobin} {
			pr, mcf, prTHP, mcfTHP := corun(prSpec, mcfSpec, &sel, budget, false)
			fmt.Printf("%-14s %-12s %9.3g %9.3g %8d %8d   (PR %.2fx, mcf %.2fx)\n",
				fmt.Sprintf("%.0f%% combined", budget), sel, pr, mcf, prTHP, mcfTHP,
				basePR/pr, baseMcf/mcf)
		}
	}

	// Noisy neighbors: the same 20%-budget frequency configuration with
	// lifecycle churn — forked processes grab huge pages from the shared
	// budget, fault their address spaces in, and exit (returning the frames
	// and forcing TLB shootdowns into the tenants' cores).
	fmt.Println("\nwith lifecycle churn (spawn/exec/exit of short-lived processes):")
	sel := ospolicy.HighestFrequency
	quietPR, quietMcf, _, _ := corun(prSpec, mcfSpec, &sel, 20, false)
	noisyPR, noisyMcf, _, _ := corun(prSpec, mcfSpec, &sel, 20, true)
	fmt.Printf("PR  %9.3g -> %9.3g cycles (%.4fx)\n", quietPR, noisyPR, noisyPR/quietPR)
	fmt.Printf("mcf %9.3g -> %9.3g cycles (%.4fx)\n", quietMcf, noisyMcf, noisyMcf/quietMcf)
}

// corun simulates the two workloads on two cores; sel == nil means the 4KB
// baseline. With a budget, each tenant gets half the machine-wide huge page
// pool via TenantConfig.HugeShare. Returns per-process runtimes and huge page
// counts.
func corun(a, b workloads.Spec, sel *ospolicy.SelectionPolicy, budgetPct float64, churn bool) (float64, float64, int, int) {
	wa, err := workloads.Build(a)
	if err != nil {
		panic(err)
	}
	wb, err := workloads.Build(b)
	if err != nil {
		panic(err)
	}

	cfg := vmm.DefaultConfig()
	cfg.Cores = 2
	cfg.PromotionInterval = 500_000
	var policy vmm.Policy = ospolicy.Baseline{}
	var engine *ospolicy.PCCEngine
	shared := false
	if sel != nil {
		cfg.EnablePCC = true
		ec := ospolicy.DefaultPCCEngineConfig()
		ec.Selection = *sel
		engine = ospolicy.NewPCCEngine(ec)
		policy = engine
		if budgetPct > 0 && budgetPct < 100 {
			combined := float64(wa.Footprint() + wb.Footprint())
			cfg.MaxHugeBytesTotal = uint64(budgetPct / 100 * combined)
			shared = true
		}
	}
	if churn {
		cfg.Lifecycle = vmm.DefaultLifecycleConfig()
	}

	m := vmm.NewMachine(cfg, policy)
	addTenant := func(w workloads.Workload) *vmm.Process {
		tc := vmm.TenantConfig{Name: w.Name(), Ranges: w.Ranges(), BaseCPA: w.BaseCPA()}
		if shared {
			tc.HugeShare = 0.5 // half the machine-wide budget each
		}
		p, err := m.AddTenant(tc)
		if err != nil {
			panic(err)
		}
		return p
	}
	pa := addTenant(wa)
	pb := addTenant(wb)
	if engine != nil {
		engine.Bind(0, pa)
		engine.Bind(1, pb)
	}
	res := m.Run(
		&vmm.Job{Proc: pa, Stream: wa.Stream(), Cores: []int{0}},
		&vmm.Job{Proc: pb, Stream: wb.Stream(), Cores: []int{1}},
	)
	if churn {
		ls := m.LifecycleStats()
		fmt.Printf("(churn: %d spawns, %d exits, %d execs, %d populate promotions)\n",
			ls.Spawns, ls.Exits, ls.Execs, ls.Promotions2M)
	}
	return res.PerProc[0].RuntimeCycles, res.PerProc[1].RuntimeCycles,
		res.PerProc[0].HugePages2M, res.PerProc[1].HugePages2M
}
