// Quickstart: build a simulated machine, run PageRank over a power-law
// graph under the PCC promotion engine, and compare against the 4KB
// baseline — the minimal end-to-end use of the library.
package main

import (
	"fmt"

	"pccsim/internal/mem"
	"pccsim/internal/ospolicy"
	"pccsim/internal/vmm"
	"pccsim/internal/workloads"
)

func main() {
	// 1. Build a workload: PageRank on a Kronecker power-law graph.
	//    (Scale 16 keeps this example fast; the experiments use 20.)
	wl, err := workloads.Build(workloads.Spec{
		Name:    "PR",
		Dataset: workloads.DatasetKron,
		Scale:   16,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("workload: %s, footprint %s across %d VMAs\n",
		wl.Name(), mem.HumanBytes(wl.Footprint()), len(wl.Ranges()))

	// 2. Baseline: 4KB pages only.
	base := run(wl, ospolicy.Baseline{}, false)
	fmt.Printf("baseline:  %12.0f cycles, %5.2f%% of accesses walk the page table\n",
		base.Cycles, 100*base.PTWRate)

	// 3. The paper's system: per-core PCC hardware + the OS promotion
	//    engine reading its ranked candidate dumps every interval.
	engine := ospolicy.NewPCCEngine(ospolicy.DefaultPCCEngineConfig())
	pcc := run(wl, engine, true)
	fmt.Printf("with PCC:  %12.0f cycles, %5.2f%% PTW, %d huge pages from %d promotions\n",
		pcc.Cycles, 100*pcc.PTWRate, pcc.HugePages2M, pcc.Promotions)

	fmt.Printf("speedup:   %.2fx\n", base.Cycles/pcc.Cycles)
}

// run simulates wl on a fresh single-core machine under the given policy.
func run(wl workloads.Workload, policy vmm.Policy, enablePCC bool) vmm.RunResult {
	cfg := vmm.DefaultConfig()
	cfg.EnablePCC = enablePCC
	cfg.PromotionInterval = 500_000

	m := vmm.NewMachine(cfg, policy)
	proc := m.AddProcess(wl.Name(), wl.Ranges(), wl.BaseCPA())
	if engine, ok := policy.(*ospolicy.PCCEngine); ok {
		engine.Bind(0, proc) // the OS knows core 0 runs this process
	}
	return m.Run(&vmm.Job{Proc: proc, Stream: wl.Stream(), Cores: []int{0}})
}
