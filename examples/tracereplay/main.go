// Trace replay: the paper's two-step methodology through the library API.
// Step one runs the live TLB+PCC simulation and records the candidate trace
// (which regions were promoted, when). Step two builds a machine WITHOUT
// PCC hardware and replays the recorded promotions at the recorded
// execution points, reproducing the live run's behaviour — the in-simulator
// analogue of feeding a Pin-captured candidate trace to a real kernel.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"pccsim/internal/ctrace"
	"pccsim/internal/ospolicy"
	"pccsim/internal/vmm"
	"pccsim/internal/workloads"
)

func main() {
	wl, err := workloads.Build(workloads.Spec{
		Name:    "BFS",
		Dataset: workloads.DatasetKron,
		Scale:   16,
		Sorted:  true,
	})
	if err != nil {
		panic(err)
	}

	// Step one: live simulation with PCC hardware; record the candidates.
	liveCfg := vmm.DefaultConfig()
	liveCfg.EnablePCC = true
	liveCfg.PromotionInterval = 400_000
	engine := ospolicy.NewPCCEngine(ospolicy.DefaultPCCEngineConfig())
	live := vmm.NewMachine(liveCfg, engine)
	lp := live.AddProcess(wl.Name(), wl.Ranges(), wl.BaseCPA())
	engine.Bind(0, lp)
	liveRes := live.Run(&vmm.Job{Proc: lp, Stream: wl.Stream(), Cores: []int{0}})

	tracePath := filepath.Join(os.TempDir(), "bfs_candidates.jsonl")
	tr := ctrace.FromMachine(live)
	if err := tr.Save(tracePath); err != nil {
		panic(err)
	}
	fmt.Printf("step 1 (live PCC): %.0f cycles, %.2f%% PTW, %d promotions -> %s\n",
		liveRes.Cycles, 100*liveRes.PTWRate, liveRes.Promotions, tracePath)

	// Step two: replay on a machine with no PCC hardware.
	loaded, err := ctrace.Load(tracePath)
	if err != nil {
		panic(err)
	}
	replayCfg := vmm.DefaultConfig()
	replayCfg.EnablePCC = false
	replayCfg.PromotionInterval = 10_000 // fine-grained replay timing
	replay := ctrace.NewReplayPolicy(loaded)
	m := vmm.NewMachine(replayCfg, replay)
	rp := m.AddProcess(wl.Name(), wl.Ranges(), wl.BaseCPA())
	replayRes := m.Run(&vmm.Job{Proc: rp, Stream: wl.Stream(), Cores: []int{0}})

	fmt.Printf("step 2 (replay):   %.0f cycles, %.2f%% PTW, %d huge pages (%d events unfired)\n",
		replayRes.Cycles, 100*replayRes.PTWRate, replayRes.HugePages2M, replay.Remaining())
	fmt.Printf("divergence: %.2f%% in cycles\n",
		100*(replayRes.Cycles-liveRes.Cycles)/liveRes.Cycles)
}
