// Fragmentation study: reproduce the paper's headline scenario on one
// workload — when physical memory is heavily fragmented and huge pages are
// scarce, informed candidate selection (PCC) keeps most of the huge page
// benefit while Linux's greedy fault-time policy burns the scarce blocks on
// streamed data and collapses to baseline performance.
package main

import (
	"fmt"

	"pccsim/internal/mem"
	"pccsim/internal/ospolicy"
	"pccsim/internal/physmem"
	"pccsim/internal/vmm"
	"pccsim/internal/workloads"
)

func main() {
	wl, err := workloads.Build(workloads.Spec{
		Name:    "BFS",
		Dataset: workloads.DatasetKron,
		Scale:   17,
		Sorted:  true,
	})
	if err != nil {
		panic(err)
	}

	// 512MB of physical memory; the workload needs a fair share of it.
	phys := physmem.Config{TotalBytes: 512 << 20, MovableFillRatio: 0.5}
	fmt.Printf("BFS footprint %s, physical memory %s\n\n",
		mem.HumanBytes(wl.Footprint()), mem.HumanBytes(phys.TotalBytes))

	fmt.Printf("%-28s %10s %8s %8s %s\n", "configuration", "cycles", "PTW%", "speedup", "huge pages")
	base := run(wl, phys, 0, func() vmm.Policy { return ospolicy.Baseline{} }, false)
	report("4KB baseline", base, base)

	for _, frag := range []float64{0.5, 0.9} {
		linux := run(wl, phys, frag, func() vmm.Policy {
			return ospolicy.NewLinuxTHP(ospolicy.DefaultLinuxTHPConfig())
		}, false)
		report(fmt.Sprintf("Linux THP, %2.0f%% fragmented", 100*frag), linux, base)

		pcc := run(wl, phys, frag, func() vmm.Policy {
			return ospolicy.NewPCCEngine(ospolicy.DefaultPCCEngineConfig())
		}, true)
		report(fmt.Sprintf("PCC,       %2.0f%% fragmented", 100*frag), pcc, base)
	}

	ideal := run(wl, phys, 0, func() vmm.Policy { return ospolicy.AllHuge{} }, false)
	report("all-2MB ideal (no pressure)", ideal, base)
}

func run(wl workloads.Workload, phys physmem.Config, frag float64,
	mkPolicy func() vmm.Policy, enablePCC bool) vmm.RunResult {

	cfg := vmm.DefaultConfig()
	cfg.Phys = phys
	cfg.FragFrac = frag
	cfg.EnablePCC = enablePCC
	cfg.PromotionInterval = 500_000
	policy := mkPolicy()
	m := vmm.NewMachine(cfg, policy)
	p := m.AddProcess(wl.Name(), wl.Ranges(), wl.BaseCPA())
	if engine, ok := policy.(*ospolicy.PCCEngine); ok {
		engine.Bind(0, p)
	}
	return m.Run(&vmm.Job{Proc: p, Stream: wl.Stream(), Cores: []int{0}})
}

func report(name string, r, base vmm.RunResult) {
	fmt.Printf("%-28s %10.3g %7.2f%% %7.2fx %6d\n",
		name, r.Cycles, 100*r.PTWRate, base.Cycles/r.Cycles, r.HugePages2M)
}
