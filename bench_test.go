// Package pccsim's benchmark harness regenerates every table and figure of
// the paper's evaluation (see DESIGN.md's experiment index). Each benchmark
// runs the corresponding experiment driver end-to-end and reports the
// headline metric of that artifact via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// both exercises the full pipeline and prints the reproduced numbers.
// Benchmarks run at a reduced scale (with proportionally shrunken TLBs, see
// Options.TLBDivisor) to stay minutes-fast; `cmd/pccsim` without -quick
// regenerates the full-scale numbers recorded in EXPERIMENTS.md.
package pccsim_test

import (
	"io"
	"testing"

	"pccsim/internal/experiments"
	"pccsim/internal/metrics"
	"pccsim/internal/ospolicy"
	"pccsim/internal/vmm"
	"pccsim/internal/workloads"
)

// benchOptions returns the benchmark-scale configuration.
func benchOptions() experiments.Options {
	o := experiments.QuickOptions(io.Discard)
	o.Scale = 15
	o.SynthAccesses = 600_000
	o.SynthSizeScale = 0.04
	o.Interval = 150_000
	o.Budgets = []float64{0, 4, 25, 100}
	return o
}

// BenchmarkTable1 regenerates the applications/inputs table.
func BenchmarkTable1(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		infos, err := experiments.Table1(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(infos) != 14 {
			b.Fatalf("rows = %d", len(infos))
		}
	}
}

// BenchmarkTable2 regenerates the system-parameters table.
func BenchmarkTable2(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1 regenerates the motivation figure: 4KB vs 2MB vs Linux THP
// under 50% fragmentation, for all eight applications. Reports the geomean
// all-2MB speedup (paper: ~1.3).
func BenchmarkFig1(b *testing.B) {
	o := benchOptions()
	var geo float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig1(o)
		if err != nil {
			b.Fatal(err)
		}
		var s []float64
		for _, r := range rows {
			s = append(s, r.Speedup2M)
		}
		geo = metrics.Geomean(s)
	}
	b.ReportMetric(geo, "geomean-2MB-speedup")
}

// BenchmarkFig2 regenerates the reuse-distance characterization (BFS on
// Kronecker). Reports the fraction of accesses landing on HUB pages.
func BenchmarkFig2(b *testing.B) {
	o := benchOptions()
	var hubFrac float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2(o, 500)
		if err != nil {
			b.Fatal(err)
		}
		hubFrac = float64(res.Summary.Accesses[1]) / float64(res.Summary.TotalAccesses())
	}
	b.ReportMetric(hubFrac, "HUB-access-fraction")
}

// BenchmarkFig5 regenerates the single-thread utility curves (PCC vs
// HawkEye) for the three graph kernels. Reports PCC's and HawkEye's geomean
// speedup at the mid budget point.
func BenchmarkFig5(b *testing.B) {
	o := benchOptions()
	var pccMid, heMid float64
	for i := 0; i < b.N; i++ {
		apps, err := experiments.Fig5(o, []string{"BFS", "SSSP", "PR"})
		if err != nil {
			b.Fatal(err)
		}
		var ps, hs []float64
		for _, a := range apps {
			// The 25%-budget point: at bench scale smaller budgets
			// round below one 2MB region.
			ps = append(ps, a.PCC.Points[2].Speedup)
			hs = append(hs, a.HawkEye.Points[2].Speedup)
		}
		pccMid, heMid = metrics.Geomean(ps), metrics.Geomean(hs)
	}
	b.ReportMetric(pccMid, "PCC-speedup@25%")
	b.ReportMetric(heMid, "HawkEye-speedup@25%")
}

// BenchmarkFig6 regenerates the PCC size sensitivity sweep. Reports the
// 128-entry speedup relative to the 4-entry one for BFS (>1 means bigger
// PCCs help, the paper's Fig 6 trend).
func BenchmarkFig6(b *testing.B) {
	o := benchOptions()
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6(o, []int{4, 16, 64, 128})
		if err != nil {
			b.Fatal(err)
		}
		ratio = rows[0].Speedup[3] / rows[0].Speedup[0]
	}
	b.ReportMetric(ratio, "BFS-128e-vs-4e")
}

// BenchmarkFig7 regenerates the 90%-fragmentation comparison. Reports the
// geomean PCC-over-Linux advantage (paper: 1.16).
func BenchmarkFig7(b *testing.B) {
	o := benchOptions()
	var adv float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig7(o, 0.9)
		if err != nil {
			b.Fatal(err)
		}
		var p, l []float64
		for _, r := range rows {
			p = append(p, r.PCC)
			l = append(l, r.LinuxTHP)
		}
		adv = metrics.Geomean(p) / metrics.Geomean(l)
	}
	b.ReportMetric(adv, "PCC-vs-Linux@90%frag")
}

// BenchmarkFig8 regenerates the multithread utility comparison (2 threads
// at bench scale). Reports the highest-frequency policy's geomean speedup
// at full budget.
func BenchmarkFig8(b *testing.B) {
	o := benchOptions()
	o.Budgets = []float64{0, 25, 100}
	var hf float64
	for i := 0; i < b.N; i++ {
		apps, err := experiments.Fig8(o, []int{2})
		if err != nil {
			b.Fatal(err)
		}
		var s []float64
		for _, a := range apps {
			s = append(s, a.HighestFreq.Points[len(a.HighestFreq.Points)-1].Speedup)
		}
		hf = metrics.Geomean(s)
	}
	b.ReportMetric(hf, "2-thread-HF-speedup")
}

// BenchmarkFig9 regenerates the multiprocess study (PR + mcf). Reports PR's
// speedup at full shared budget under the highest-frequency policy.
func BenchmarkFig9(b *testing.B) {
	o := benchOptions()
	o.Budgets = []float64{0, 25, 100}
	var pr float64
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig9(o, "PR", "mcf")
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range series {
			if s.App == "PR" && s.Policy == "highest-freq" {
				pr = s.Points[len(s.Points)-1].Speedup
			}
		}
	}
	b.ReportMetric(pr, "PR-corun-speedup")
}

// BenchmarkAblationReplacement sweeps the PCC replacement policy (§3.2.1).
func BenchmarkAblationReplacement(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationReplacement(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationColdFilter toggles the accessed-bit cold-miss filter.
func BenchmarkAblationColdFilter(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationColdFilter(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDecay toggles counter decay.
func BenchmarkAblationDecay(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationDecay(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationInterval sweeps the OS promotion interval (§3.3.1).
func BenchmarkAblationInterval(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationInterval(o, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed (accesses per
// second through the TLB+walker+PCC pipeline), the simulator's own
// performance figure.
func BenchmarkSimulatorThroughput(b *testing.B) {
	wl, err := workloads.Build(workloads.Spec{Name: "BFS", Scale: 15})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var accesses uint64
	for i := 0; i < b.N; i++ {
		cfg := vmm.DefaultConfig()
		engine := ospolicy.NewPCCEngine(ospolicy.DefaultPCCEngineConfig())
		m := vmm.NewMachine(cfg, engine)
		p := m.AddProcess(wl.Name(), wl.Ranges(), wl.BaseCPA())
		engine.Bind(0, p)
		res := m.Run(&vmm.Job{Proc: p, Stream: wl.Stream(), Cores: []int{0}})
		accesses += res.Accesses
	}
	b.ReportMetric(float64(accesses)/b.Elapsed().Seconds(), "accesses/s")
}

// BenchmarkExtVictim regenerates the §5.4.1 victim-cache comparison.
func BenchmarkExtVictim(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtVictimCache(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExt1G regenerates the §3.2.3 1GB promotion study and reports
// the 1GB-over-2MB-only advantage.
func BenchmarkExt1G(b *testing.B) {
	o := benchOptions()
	var adv float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Ext1G(o)
		if err != nil {
			b.Fatal(err)
		}
		adv = res.With1G / res.With2MOnly
	}
	b.ReportMetric(adv, "1GB-vs-2MB-only")
}

// BenchmarkExtPhases regenerates the §3.3.3 phased-demotion study.
func BenchmarkExtPhases(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtPhases(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtVirt regenerates the §5.4.3 virtualization study and reports
// the coordinated-over-guest-only advantage.
func BenchmarkExtVirt(b *testing.B) {
	o := benchOptions()
	var adv float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.ExtVirt(o)
		if err != nil {
			b.Fatal(err)
		}
		adv = res.Coordinated / res.GuestOnly
	}
	b.ReportMetric(adv, "coordinated-vs-guest-only")
}

// BenchmarkExtBloat regenerates the §2.1 memory-bloat comparison and
// reports Linux's bloat in MB (PCC's is ~0 by design).
func BenchmarkExtBloat(b *testing.B) {
	o := benchOptions()
	var bloatMB float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.ExtBloat(o)
		if err != nil {
			b.Fatal(err)
		}
		bloatMB = float64(res.LinuxBloat) / (1 << 20)
	}
	b.ReportMetric(bloatMB, "linux-bloat-MB")
}

// BenchmarkExtPWC regenerates the page-walk-cache validation.
func BenchmarkExtPWC(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtPWC(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtNUMA regenerates the NUMA-placement methodology study and
// reports the interleave slowdown versus bound placement.
func BenchmarkExtNUMA(b *testing.B) {
	o := benchOptions()
	var slow float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ExtNUMA(o)
		if err != nil {
			b.Fatal(err)
		}
		slow = rows[1].Slowdown
	}
	b.ReportMetric(slow, "interleave-slowdown")
}

// BenchmarkExtChar regenerates the all-apps reuse characterization.
func BenchmarkExtChar(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtChar(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSummary regenerates the paper-vs-measured scoreboard and reports
// how many headline claims hold.
func BenchmarkSummary(b *testing.B) {
	o := benchOptions()
	var holds float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Summary(o)
		if err != nil {
			b.Fatal(err)
		}
		holds = 0
		for _, r := range rows {
			if r.Holds {
				holds++
			}
		}
	}
	b.ReportMetric(holds, "claims-holding")
}
