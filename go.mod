module pccsim

go 1.22
